// Lemma 6: symbolic coefficient accounting in (possibly pruned) base
// graphs.
//
// Treat the b_ij as coefficients and the a_ij as variables (Section
// 7.3). The coefficient of A-entry e in output d is the linear form
//   sum_{q kept} W[d,q] * U[q,e] * V[q,·]   in F[b_11, ..., b_n0n0].
// For d = (i,j) and e = (i,j') the "correct" value for matrix
// multiplication is the unit form b_{j'j}. Lemma 6: a base CDAG that
// gets d coefficient pairs (j,j') right for some row i uses at least d
// multiplications. These helpers compute both sides of that inequality
// for arbitrary product subsets (the pruning in Figure 9), which is how
// the test suite exercises the impossibility argument behind Lemma 5.
#pragma once

#include <vector>

#include "pathrouting/bilinear/bilinear.hpp"

namespace pathrouting::routing {

using bilinear::BilinearAlgorithm;
using support::Rational;

/// The linear form (length-a vector over B-entries) of A-entry e in
/// output d, restricted to the products with keep[q] true. Inputs of A
/// outside e's row are irrelevant to this form (it is per-entry).
std::vector<Rational> a_coefficient_form(const BilinearAlgorithm& alg,
                                         const std::vector<bool>& keep, int d,
                                         int e);

/// True iff the form equals the correct unit form b_{col(e), col(d)}
/// and d, e share a row.
bool a_coefficient_correct(const BilinearAlgorithm& alg,
                           const std::vector<bool>& keep, int d, int e);

struct Lemma6Counts {
  int correct = 0;          // pairs (j, j') with the right coefficient
  int multiplications = 0;  // kept products with row-i support in U
  [[nodiscard]] bool holds() const { return multiplications >= correct; }
};

/// Both sides of Lemma 6's inequality for input row i, after zeroing
/// the A-entries outside row i and pruning products to `keep`.
Lemma6Counts lemma6_counts(const BilinearAlgorithm& alg,
                           const std::vector<bool>& keep, int i);

}  // namespace pathrouting::routing
