#include "pathrouting/routing/memo_routing.hpp"

#include <algorithm>
#include <mutex>

#include "pathrouting/obs/obs.hpp"

namespace pathrouting::routing {

namespace {

using cdag::CopyBlock;
using cdag::CopyTranslation;
using cdag::Layout;
using cdag::SubComputation;

/// n0^0 .. n0^k as plain uint64 (layout pow tables cover a and b only).
std::vector<std::uint64_t> pow_n0_table(int n0, int k) {
  std::vector<std::uint64_t> pow(static_cast<std::size_t>(k) + 1, 1);
  for (int t = 1; t <= k; ++t) {
    pow[static_cast<std::size_t>(t)] =
        pow[static_cast<std::size_t>(t) - 1] * static_cast<std::uint64_t>(n0);
  }
  return pow;
}

/// M_side[q] = #{guaranteed digit pairs (d, e) matched to product q}.
std::vector<std::uint64_t> matched_pair_counts(const BilinearAlgorithm& alg,
                                               Side side,
                                               const BaseMatching& mu) {
  std::vector<std::uint64_t> m(static_cast<std::size_t>(alg.b()), 0);
  for (int d = 0; d < alg.a(); ++d) {
    for (int e = 0; e < alg.a(); ++e) {
      if (is_guaranteed_digit_pair(alg.n0(), side, d, e)) {
        ++m[static_cast<std::size_t>(mu.product(d, e))];
      }
    }
  }
  return m;
}

/// Prefix products P_t[q_1..q_t] = prod_i M[q_i] for t = 0..k; the
/// level-t table is indexed by the base-b word q_1..q_t.
std::vector<std::vector<std::uint64_t>> prefix_products(
    const std::vector<std::uint64_t>& m, int b, int k) {
  std::vector<std::vector<std::uint64_t>> p(static_cast<std::size_t>(k) + 1);
  p[0] = {1};
  for (int t = 1; t <= k; ++t) {
    const auto& prev = p[static_cast<std::size_t>(t) - 1];
    auto& cur = p[static_cast<std::size_t>(t)];
    cur.resize(prev.size() * static_cast<std::size_t>(b));
    for (std::size_t qw = 0; qw < cur.size(); ++qw) {
      cur[qw] = prev[qw / static_cast<std::size_t>(b)] *
                m[qw % static_cast<std::size_t>(b)];
    }
  }
  return p;
}

/// One equivalence class of recursion-path words of a fixed length:
/// all words sharing the (wrapped) prefix products of M_A and M_B have
/// identical hit counts on every rank they index, so per class only the
/// products and the smallest representative word (for smallest-id
/// argmax tie-breaks) are needed. Keyed std::map for a deterministic
/// iteration order.
using DigitStates = std::map<std::pair<std::uint64_t, std::uint64_t>,
                             std::uint64_t>;

/// The class sets for word lengths 0..k. Multiplication composes per
/// digit, so level t refines level t-1 by one ascending digit — exactly
/// the left-fold the canonical prefix_products tables wrap under, which
/// keeps every class product bit-identical to the table entries.
std::vector<DigitStates> wrapped_state_levels(
    const std::vector<std::uint64_t>& m_a,
    const std::vector<std::uint64_t>& m_b, int b, int k) {
  std::vector<DigitStates> levels(static_cast<std::size_t>(k) + 1);
  levels[0].emplace(std::make_pair(std::uint64_t{1}, std::uint64_t{1}), 0);
  for (int t = 1; t <= k; ++t) {
    DigitStates& next = levels[static_cast<std::size_t>(t)];
    for (const auto& [key, word] : levels[static_cast<std::size_t>(t) - 1]) {
      for (int d = 0; d < b; ++d) {
        const std::pair<std::uint64_t, std::uint64_t> nk{
            key.first * m_a[static_cast<std::size_t>(d)],
            key.second * m_b[static_cast<std::size_t>(d)]};
        const std::uint64_t nw =
            word * static_cast<std::uint64_t>(b) + static_cast<std::uint64_t>(d);
        const auto [it, inserted] = next.emplace(nk, nw);
        if (!inserted && nw < it->second) it->second = nw;
      }
    }
    PR_REQUIRE_MSG(next.size() <= (std::size_t{1} << 20),
                   "digit-state classes exploded; implicit engine assumes "
                   "few distinct matched-pair products");
  }
  return levels;
}

/// The canonical-G_k chain-hit extremum (max and FIRST local vertex id
/// attaining it), scaled by `mult`, without the array: ranks are walked
/// in local id order (encA 0..k, encB 0..k, dec 0..k) and within a rank
/// the count is constant in the position word, so per rank the winner
/// is the best class (largest value, then smallest word) at position 0.
/// Strict > across ranks keeps the earliest id, matching the explicit
/// v = 0..n scan even when wraparound reorders values.
struct LocalExtremum {
  std::uint64_t max = 0;
  VertexId argmax = 0;
};

LocalExtremum scan_copy_extremum(const Layout& local,
                                 const std::vector<DigitStates>& levels,
                                 const std::vector<std::uint64_t>& pow_n0,
                                 std::uint64_t mult) {
  const int k = local.r();
  LocalExtremum ext;
  const auto rank_best = [&](int len,
                             const auto& value) -> std::pair<std::uint64_t,
                                                             std::uint64_t> {
    std::uint64_t best_val = 0, best_word = 0;
    bool have = false;
    for (const auto& [key, word] : levels[static_cast<std::size_t>(len)]) {
      const std::uint64_t val = value(key);
      if (!have || val > best_val || (val == best_val && word < best_word)) {
        have = true;
        best_val = val;
        best_word = word;
      }
    }
    return {best_val, best_word};
  };
  for (const Side side : {Side::A, Side::B}) {
    for (int t = 0; t <= k; ++t) {
      const auto [val, word] = rank_best(t, [&](const auto& key) {
        const std::uint64_t p = side == Side::A ? key.first : key.second;
        return mult * (p * pow_n0[static_cast<std::size_t>(k - t)]);
      });
      if (val > ext.max) {
        ext.max = val;
        ext.argmax = local.enc(side, t, word, 0);
      }
    }
  }
  for (int t = 0; t <= k; ++t) {
    const auto [val, word] = rank_best(k - t, [&](const auto& key) {
      return mult *
             ((key.first + key.second) * pow_n0[static_cast<std::size_t>(t)]);
    });
    if (val > ext.max) {
      ext.max = val;
      ext.argmax = local.dec(t, word, 0);
    }
  }
  return ext;
}

}  // namespace

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kBrute:
      return "brute";
    case EngineKind::kMemo:
      return "memo";
    case EngineKind::kImplicit:
      return "implicit";
  }
  PR_UNREACHABLE();
}

struct MemoRoutingEngine::CanonicalCounts {
  explicit CanonicalCounts(Layout layout) : layout(std::move(layout)) {}
  Layout layout;  // the standalone canonical G_k
  std::vector<std::uint64_t> chain_hits;
  std::uint64_t chain_max = 0;
  VertexId chain_argmax = 0;
  std::vector<std::uint64_t> decode_hits;  // empty without a decoder
  std::uint64_t decode_max = 0;
  VertexId decode_argmax = 0;
};

MemoRoutingEngine::~MemoRoutingEngine() = default;

MemoRoutingEngine::MemoRoutingEngine(const ChainRouter& router)
    : alg_(router.algorithm()),
      mu_a_(router.matching(Side::A)),
      mu_b_(router.matching(Side::B)),
      m_a_(matched_pair_counts(alg_, Side::A, mu_a_)),
      m_b_(matched_pair_counts(alg_, Side::B, mu_b_)) {
  // Trivial (single-coefficient-1) encoding rows, i.e. the builder's
  // copy vertices: the implicit Theorem-2 accounting needs them for the
  // root-hit and meta-root conditions.
  triv_a_.assign(static_cast<std::size_t>(alg_.b()), 0);
  triv_b_.assign(static_cast<std::size_t>(alg_.b()), 0);
  for (int q = 0; q < alg_.b(); ++q) {
    for (const Side side : {Side::A, Side::B}) {
      int nnz = 0, entry = 0;
      for (int d = 0; d < alg_.a(); ++d) {
        const auto& c = side == Side::A ? alg_.u(q, d) : alg_.v(q, d);
        if (!c.is_zero()) {
          ++nnz;
          entry = d;
        }
      }
      const bool trivial =
          nnz == 1 && (side == Side::A ? alg_.u(q, entry).is_one()
                                       : alg_.v(q, entry).is_one());
      auto& triv = side == Side::A ? triv_a_ : triv_b_;
      triv[static_cast<std::size_t>(q)] = trivial ? 1 : 0;
    }
  }
}

MemoRoutingEngine::MemoRoutingEngine(const ChainRouter& router,
                                     const DecodeRouter& decoder)
    : MemoRoutingEngine(router) {
  PR_REQUIRE_MSG(decoder.d1_size() == alg_.a() + alg_.b(),
                 "decoder built from a different base algorithm");
  decoder_ = decoder;
  // CPint[x]: strictly-interior product visits (even path index >= 2);
  // CO[y]: output visits (odd index, terminal included). Index 0 is the
  // path's starting product, whose D_k vertex is accounted for by the
  // previous recursion level (or by the initial path vertex).
  cpint_.assign(static_cast<std::size_t>(alg_.b()), 0);
  co_.assign(static_cast<std::size_t>(alg_.a()), 0);
  for (int q = 0; q < alg_.b(); ++q) {
    for (int e = 0; e < alg_.a(); ++e) {
      const std::vector<int>& path = decoder_->d1_path(q, e);
      for (std::size_t i = 1; i < path.size(); ++i) {
        auto& table = i % 2 == 1 ? co_ : cpint_;
        ++table[static_cast<std::size_t>(path[i])];
      }
    }
  }
  for (const std::uint64_t c : cpint_) cpint_sum_ += c;
  for (const std::uint64_t c : co_) co_sum_ += c;
}

void MemoRoutingEngine::check_sub(const SubComputation& sub) const {
  const Layout& layout = sub.cdag().layout();
  PR_REQUIRE_MSG(layout.n0() == alg_.n0() && layout.b() == alg_.b(),
                 "subcomputation belongs to a different base algorithm");
  PR_REQUIRE_MSG(sub.k() >= 1,
                 "memoized engine routes G_k copies with k >= 1");
}

const MemoRoutingEngine::CanonicalCounts& MemoRoutingEngine::canonical(
    int k) const {
  static obs::Counter obs_hits("memo.canonical_cache_hits");
  static obs::Counter obs_misses("memo.canonical_cache_misses");
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = cache_.find(k);
    if (it != cache_.end()) {
      obs_hits.add();
      return *it->second;
    }
  }
  obs_misses.add();
  const obs::TraceSpan span("memo.canonical_fill");

  auto cc = std::make_unique<CanonicalCounts>(Layout(alg_.n0(), alg_.b(), k));
  const Layout& local = cc->layout;
  const auto& pow_a = local.pow_a();
  const auto& pow_b = local.pow_b();
  const std::vector<std::uint64_t> pow_n0 = pow_n0_table(alg_.n0(), k);
  const std::uint64_t b = static_cast<std::uint64_t>(alg_.b());

  // --- Lemma-3 chain hits, closed form (see header). ---
  cc->chain_hits.assign(local.num_vertices(), 0);
  const auto pa = prefix_products(m_a_, alg_.b(), k);
  const auto pb = prefix_products(m_b_, alg_.b(), k);
  for (const Side side : {Side::A, Side::B}) {
    const auto& pp = side == Side::A ? pa : pb;
    for (int t = 0; t <= k; ++t) {
      for (std::uint64_t qw = 0; qw < pow_b(t); ++qw) {
        const std::uint64_t val =
            pp[static_cast<std::size_t>(t)][qw] *
            pow_n0[static_cast<std::size_t>(k - t)];
        const VertexId base = local.enc(side, t, qw, 0);
        for (std::uint64_t p = 0; p < pow_a(k - t); ++p) {
          cc->chain_hits[base + p] = val;
        }
      }
    }
  }
  for (int t = 0; t <= k; ++t) {
    for (std::uint64_t qw = 0; qw < pow_b(k - t); ++qw) {
      const std::uint64_t val =
          (pa[static_cast<std::size_t>(k - t)][qw] +
           pb[static_cast<std::size_t>(k - t)][qw]) *
          pow_n0[static_cast<std::size_t>(t)];
      const VertexId base = local.dec(t, qw, 0);
      for (std::uint64_t p = 0; p < pow_a(t); ++p) {
        cc->chain_hits[base + p] = val;
      }
    }
  }
  for (VertexId v = 0; v < local.num_vertices(); ++v) {
    if (cc->chain_hits[v] > cc->chain_max) {
      cc->chain_max = cc->chain_hits[v];
      cc->chain_argmax = v;
    }
  }

  // --- Claim-1 decode hits, closed form (see header). ---
  if (decoder_.has_value()) {
    const std::uint64_t a = static_cast<std::uint64_t>(alg_.a());
    cc->decode_hits.assign(local.num_vertices(), 0);
    // Rank 0: once per path starting here, plus interior revisits.
    for (std::uint64_t q = 0; q < pow_b(k); ++q) {
      cc->decode_hits[local.dec(0, q, 0)] =
          (a + cpint_[q % b]) * pow_a(k - 1);
    }
    for (int t = 1; t < k; ++t) {
      for (std::uint64_t q = 0; q < pow_b(k - t); ++q) {
        const std::uint64_t down = cpint_[q % b] * pow_b(t) * pow_a(k - t - 1);
        const VertexId base = local.dec(t, q, 0);
        for (std::uint64_t p = 0; p < pow_a(t); ++p) {
          cc->decode_hits[base + p] =
              down + co_[p / pow_a(t - 1)] * pow_b(t - 1) * pow_a(k - t);
        }
      }
    }
    for (std::uint64_t p = 0; p < pow_a(k); ++p) {
      cc->decode_hits[local.dec(k, 0, p)] =
          co_[p / pow_a(k - 1)] * pow_b(k - 1);
    }
    for (VertexId v = 0; v < local.num_vertices(); ++v) {
      if (cc->decode_hits[v] > cc->decode_max) {
        cc->decode_max = cc->decode_hits[v];
        cc->decode_argmax = v;
      }
    }
  }

  // The fill above ran outside the lock so concurrent readers of other
  // ranks were never blocked; a racing thread may have inserted the
  // same k first, in which case its (bit-identical) entry wins and this
  // candidate is dropped.
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return *cache_.emplace(k, std::move(cc)).first->second;
}

std::span<const std::uint64_t> MemoRoutingEngine::canonical_chain_hit_array(
    int k) const {
  PR_REQUIRE_MSG(k >= 1, "canonical arrays exist for k >= 1");
  return canonical(k).chain_hits;
}

std::span<const std::uint64_t> MemoRoutingEngine::canonical_decode_hit_array(
    int k) const {
  PR_REQUIRE_MSG(k >= 1, "canonical arrays exist for k >= 1");
  PR_REQUIRE_MSG(has_decoder(),
                 "engine was constructed without a DecodeRouter");
  return canonical(k).decode_hits;
}

ChainHitCounts MemoRoutingEngine::chain_hits(const SubComputation& sub) const {
  check_sub(sub);
  const obs::TraceSpan span("memo.chain_hits");
  const Layout& global = sub.cdag().layout();
  const int k = sub.k();
  const CanonicalCounts& cc = canonical(k);
  const CopyTranslation map(global, k, sub.prefix());
  ChainHitCounts counts;
  counts.hits.assign(global.num_vertices(), 0);
  for (const CopyBlock& blk : map.blocks()) {
    std::copy_n(cc.chain_hits.begin() + blk.local_base, blk.length,
                counts.hits.begin() + blk.global_base);
  }
  static obs::Counter obs_blocks("memo.copy_blocks");
  obs_blocks.add(map.blocks().size());
  counts.num_chains =
      2 * global.pow_a()(k) * guaranteed_fanout(global, k);
  // Blocks are monotone in both id spaces and everything outside the
  // copy is zero, so the smallest-id argmax translates verbatim.
  counts.max_hits = cc.chain_max;
  counts.argmax = map.to_global(cc.chain_argmax);
  return counts;
}

HitStats MemoRoutingEngine::verify_chain_routing(
    const SubComputation& sub) const {
  return chain_stats_from_counts(chain_hits(sub), sub);
}

bool MemoRoutingEngine::verify_chain_multiplicities(
    const SubComputation& sub) const {
  check_sub(sub);
  return chain_multiplicities_ok();
}

bool MemoRoutingEngine::chain_multiplicities_ok() const {
  const int n0 = alg_.n0();
  const int a = alg_.a();
  // Role-resolved use counters of the 2*a*n0 guaranteed digit chains:
  // chain key = (side, input digit, free digit of the output), role =
  // position in the Lemma-4 three-chain sequence.
  std::vector<std::uint64_t> uses(
      static_cast<std::size_t>(2 * a * n0 * 3), 0);
  bool all_guaranteed = true;
  const auto use = [&](Side side, int d_in, int d_out, int role) {
    if (!is_guaranteed_digit_pair(n0, side, d_in, d_out)) {
      all_guaranteed = false;
      return;
    }
    const int f = side == Side::A ? d_out % n0 : d_out / n0;
    const int s = side == Side::A ? 0 : 1;
    ++uses[static_cast<std::size_t>(((s * a + d_in) * n0 + f) * 3 + role)];
  };
  // The k = 1 specs of Lemma 4's sequences (make_spec, digit level).
  for (int v = 0; v < a; ++v) {
    const int vr = v / n0, vc = v % n0;
    for (int w = 0; w < a; ++w) {
      const int wr = w / n0, wc = w % n0;
      {  // A-side input: a_ij -> c_ij' <- b_jj' -> c_i'j'
        const int x = vr * n0 + wc, y = vc * n0 + wc;
        use(Side::A, v, x, 0);
        use(Side::B, y, x, 1);
        use(Side::B, y, w, 2);
      }
      {  // B-side input: b_ij -> c_i'j <- a_i'i -> c_i'j'
        const int x = wr * n0 + vc, y = wr * n0 + vr;
        use(Side::B, v, x, 0);
        use(Side::A, y, x, 1);
        use(Side::A, y, w, 2);
      }
    }
  }
  if (!all_guaranteed) return false;
  // Each digit chain carrying each role exactly n0 times at k = 1
  // factorizes to exactly 3 * n0^k uses of every chain of sub.
  return std::all_of(uses.begin(), uses.end(), [&](std::uint64_t u) {
    return u == static_cast<std::uint64_t>(n0);
  });
}

FullRoutingStats MemoRoutingEngine::verify_full_routing(
    const SubComputation& sub) const {
  return full_routing_from_chain_counts(sub, chain_hits(sub));
}

std::vector<std::uint64_t> MemoRoutingEngine::decode_hits(
    const SubComputation& sub) const {
  check_sub(sub);
  PR_REQUIRE_MSG(has_decoder(),
                 "engine was constructed without a DecodeRouter");
  const obs::TraceSpan span("memo.decode_hits");
  const Layout& global = sub.cdag().layout();
  const CanonicalCounts& cc = canonical(sub.k());
  const CopyTranslation map(global, sub.k(), sub.prefix());
  std::vector<std::uint64_t> hits(global.num_vertices(), 0);
  for (const CopyBlock& blk : map.blocks()) {
    std::copy_n(cc.decode_hits.begin() + blk.local_base, blk.length,
                hits.begin() + blk.global_base);
  }
  static obs::Counter obs_blocks("memo.copy_blocks");
  obs_blocks.add(map.blocks().size());
  return hits;
}

HitStats MemoRoutingEngine::verify_decode_routing(
    const SubComputation& sub) const {
  check_sub(sub);
  PR_REQUIRE_MSG(has_decoder(),
                 "engine was constructed without a DecodeRouter");
  const Layout& global = sub.cdag().layout();
  const int k = sub.k();
  const CanonicalCounts& cc = canonical(k);
  const CopyTranslation map(global, k, sub.prefix());
  HitStats stats;
  stats.num_paths = global.pow_b()(k) * global.pow_a()(k);
  stats.bound = static_cast<std::uint64_t>(decoder_->d1_size()) *
                std::max(global.pow_a()(k), global.pow_b()(k));
  stats.max_hits = cc.decode_max;
  stats.argmax = map.to_global(cc.decode_argmax);
  return stats;
}

void MemoRoutingEngine::check_view(const cdag::CdagView& view, int k,
                                   std::uint64_t prefix) const {
  const Layout& layout = view.layout();
  PR_REQUIRE_MSG(layout.n0() == alg_.n0() && layout.b() == alg_.b(),
                 "view belongs to a different base algorithm");
  PR_REQUIRE_MSG(k >= 1 && k <= layout.r(),
                 "implicit engine routes G_k copies with 1 <= k <= r");
  PR_REQUIRE_MSG(prefix < layout.pow_b()(layout.r() - k),
                 "copy prefix out of range");
}

HitStats MemoRoutingEngine::verify_chain_routing(const cdag::CdagView& view,
                                                 int k,
                                                 std::uint64_t prefix) const {
  check_view(view, k, prefix);
  const obs::TraceSpan span("memo.implicit_chain");
  const Layout& global = view.layout();
  const Layout local(alg_.n0(), alg_.b(), k);
  const auto levels = wrapped_state_levels(m_a_, m_b_, alg_.b(), k);
  const auto pow_n0 = pow_n0_table(alg_.n0(), k);
  const LocalExtremum ext = scan_copy_extremum(local, levels, pow_n0, 1);
  HitStats stats;
  stats.num_paths = 2 * global.pow_a()(k) * guaranteed_fanout(global, k);
  stats.bound = 2 * guaranteed_fanout(global, k);
  stats.max_hits = ext.max;
  // Copy blocks are monotone in both id spaces and counts vanish
  // outside the copy, so the local smallest-id argmax translates.
  stats.argmax = CopyTranslation(global, k, prefix).to_global(ext.argmax);
  return stats;
}

bool MemoRoutingEngine::verify_chain_multiplicities(
    const cdag::CdagView& view, int k, std::uint64_t prefix) const {
  check_view(view, k, prefix);
  return chain_multiplicities_ok();
}

FullRoutingStats MemoRoutingEngine::verify_full_routing(
    const cdag::CdagView& view, int k, std::uint64_t prefix) const {
  check_view(view, k, prefix);
  const obs::TraceSpan span("memo.implicit_full");
  const Layout& global = view.layout();
  const int r = global.r();
  const std::uint64_t b = static_cast<std::uint64_t>(alg_.b());
  const Layout local(alg_.n0(), alg_.b(), k);
  const auto levels = wrapped_state_levels(m_a_, m_b_, alg_.b(), k);
  const auto pow_n0 = pow_n0_table(alg_.n0(), k);
  const std::uint64_t mult = 3 * guaranteed_fanout(global, k);  // 3 * n0^k

  FullRoutingStats stats;
  stats.bound = 6 * global.pow_a()(k);
  stats.num_paths = 2 * global.pow_a()(k) * global.pow_a()(k);

  const LocalExtremum ext = scan_copy_extremum(local, levels, pow_n0, mult);
  stats.max_vertex_hits = ext.max;
  // The explicit path scans the whole global hit array; counts are zero
  // outside the copy, so a positive max is first attained at the
  // translated local argmax (and a zero max leaves argmax at vertex 0).
  stats.argmax_vertex =
      ext.max == 0 ? 0
                   : CopyTranslation(global, k, prefix).to_global(ext.argmax);

  // Root-hit monotonicity along copy edges. Inside the copy, the edge
  // enc(t, q_hi*b + q_c, p) -> enc(t-1, q_hi, ...) with trivial row q_c
  // compares P_{t-1}*M[q_c]*n0^(k-t) against P_{t-1}*n0^(k-t+1) for
  // every realizable prefix-product class. At the copy boundary
  // (local rank 0, r > k), a trivial last prefix digit hangs the copy's
  // inputs (n0^k hits) off a zero-hit parent outside the copy — a
  // guaranteed violation the explicit global scan also reports.
  if (r > k && (triv_a_[prefix % b] != 0 || triv_b_[prefix % b] != 0)) {
    stats.root_hit_property = false;
  }
  for (const Side side : {Side::A, Side::B}) {
    const auto& m = side == Side::A ? m_a_ : m_b_;
    const auto& triv = side == Side::A ? triv_a_ : triv_b_;
    for (int t = 1; t <= k; ++t) {
      for (std::uint64_t q_c = 0; q_c < b; ++q_c) {
        if (triv[q_c] == 0) continue;
        for (const auto& entry : levels[static_cast<std::size_t>(t) - 1]) {
          const auto& key = entry.first;
          const std::uint64_t p = side == Side::A ? key.first : key.second;
          const std::uint64_t child =
              (p * m[q_c]) * pow_n0[static_cast<std::size_t>(k - t)];
          const std::uint64_t parent =
              p * pow_n0[static_cast<std::size_t>(k - t) + 1];
          if (child > parent) stats.root_hit_property = false;
        }
      }
    }
  }

  // Meta-vertex hits: the duplicated meta-roots with nonzero counts are
  // encoding vertices of the copy whose last path digit is nontrivial
  // (or local inputs, roots unless the copy boundary continues their
  // row chain) and whose position word can pick up a fanned digit —
  // possible iff the side has a trivial row and the word is nonempty
  // (local rank < k). Counts are position-independent, so classes again
  // suffice; everything outside the copy contributes zero, like in the
  // explicit scan.
  for (const Side side : {Side::A, Side::B}) {
    const auto& m = side == Side::A ? m_a_ : m_b_;
    const auto& triv = side == Side::A ? triv_a_ : triv_b_;
    const bool has_trivial =
        std::find(triv.begin(), triv.end(), std::uint8_t{1}) != triv.end();
    if (!has_trivial) continue;
    if (r == k || triv[prefix % b] == 0) {
      stats.max_meta_hits =
          std::max(stats.max_meta_hits,
                   mult * pow_n0[static_cast<std::size_t>(k)]);
    }
    for (int t = 1; t < k; ++t) {
      for (std::uint64_t q = 0; q < b; ++q) {
        if (triv[q] != 0) continue;
        for (const auto& entry : levels[static_cast<std::size_t>(t) - 1]) {
          const auto& key = entry.first;
          const std::uint64_t p = side == Side::A ? key.first : key.second;
          stats.max_meta_hits = std::max(
              stats.max_meta_hits,
              mult * ((p * m[q]) * pow_n0[static_cast<std::size_t>(k - t)]));
        }
      }
    }
  }
  return stats;
}

HitStats MemoRoutingEngine::verify_decode_routing(const cdag::CdagView& view,
                                                  int k,
                                                  std::uint64_t prefix) const {
  check_view(view, k, prefix);
  PR_REQUIRE_MSG(has_decoder(),
                 "engine was constructed without a DecodeRouter");
  const obs::TraceSpan span("memo.implicit_decode");
  const Layout& global = view.layout();
  const Layout local(alg_.n0(), alg_.b(), k);
  const auto& pa = local.pow_a();
  const auto& pb = local.pow_b();
  const std::uint64_t a = static_cast<std::uint64_t>(alg_.a());
  const std::uint64_t b = static_cast<std::uint64_t>(alg_.b());
  // Decode counts depend only on (rank, last path digit, leading
  // position digit); scanning those residues in id order of their
  // smallest representatives reproduces the canonical array scan.
  std::uint64_t max = 0;
  VertexId argmax = 0;
  const auto consider = [&](std::uint64_t val, VertexId id) {
    if (val > max) {
      max = val;
      argmax = id;
    }
  };
  for (std::uint64_t x = 0; x < b; ++x) {
    consider((a + cpint_[x]) * pa(k - 1), local.dec(0, x, 0));
  }
  for (int t = 1; t < k; ++t) {
    for (std::uint64_t x = 0; x < b; ++x) {
      const std::uint64_t down = cpint_[x] * pb(t) * pa(k - t - 1);
      for (std::uint64_t y = 0; y < a; ++y) {
        consider(down + co_[y] * pb(t - 1) * pa(k - t),
                 local.dec(t, x, y * pa(t - 1)));
      }
    }
  }
  for (std::uint64_t y = 0; y < a; ++y) {
    consider(co_[y] * pb(k - 1), local.dec(k, 0, y * pa(k - 1)));
  }
  HitStats stats;
  stats.num_paths = global.pow_b()(k) * global.pow_a()(k);
  stats.bound = static_cast<std::uint64_t>(decoder_->d1_size()) *
                std::max(global.pow_a()(k), global.pow_b()(k));
  stats.max_hits = max;
  stats.argmax = CopyTranslation(global, k, prefix).to_global(argmax);
  return stats;
}

std::uint64_t MemoRoutingEngine::expected_num_chains(int k) const {
  std::uint64_t n = 2;
  for (int t = 0; t < k; ++t) {
    n *= static_cast<std::uint64_t>(alg_.a()) *
         static_cast<std::uint64_t>(alg_.n0());
  }
  return n;  // 2 * a^k * n0^k
}

std::uint64_t MemoRoutingEngine::expected_chain_total_hits(int k) const {
  // Chains have exactly 2k+2 distinct vertices.
  return expected_num_chains(k) * static_cast<std::uint64_t>(2 * k + 2);
}

std::uint64_t MemoRoutingEngine::expected_num_decode_paths(int k) const {
  std::uint64_t n = 1;
  for (int t = 0; t < k; ++t) {
    n *= static_cast<std::uint64_t>(alg_.a()) *
         static_cast<std::uint64_t>(alg_.b());
  }
  return n;  // b^k * a^k
}

std::uint64_t MemoRoutingEngine::expected_decode_total_hits(int k) const {
  PR_REQUIRE_MSG(has_decoder(),
                 "engine was constructed without a DecodeRouter");
  // Every path has 1 + sum_l (|d1_path(q_l, e_l)| - 1) vertices; summed
  // over all b^k * a^k paths the level sums telescope to the D_1 visit
  // totals with the other k-1 digit pairs free.
  std::uint64_t lower = 1;  // a^(k-1) * b^(k-1)
  for (int t = 0; t + 1 < k; ++t) {
    lower *= static_cast<std::uint64_t>(alg_.a()) *
             static_cast<std::uint64_t>(alg_.b());
  }
  return expected_num_decode_paths(k) +
         static_cast<std::uint64_t>(k) * lower * (cpint_sum_ + co_sum_);
}

}  // namespace pathrouting::routing
