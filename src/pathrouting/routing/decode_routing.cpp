#include "pathrouting/routing/decode_routing.hpp"

#include <algorithm>
#include <deque>

#include "pathrouting/obs/obs.hpp"
#include "pathrouting/support/parallel.hpp"

namespace pathrouting::routing {

namespace {

namespace parallel = support::parallel;

/// BFS in the undirected bipartite D_1 (b products, a outputs) from
/// product `q0`; returns for each node its BFS parent, with products
/// encoded as 0..b-1 and outputs as b..b+a-1.
std::vector<int> bfs_parents(const BilinearAlgorithm& alg, int q0) {
  const int b = alg.b();
  const int a = alg.a();
  std::vector<int> parent(static_cast<std::size_t>(a + b), -2);  // -2 unseen
  std::deque<int> queue = {q0};
  parent[static_cast<std::size_t>(q0)] = -1;  // root
  while (!queue.empty()) {
    const int node = queue.front();
    queue.pop_front();
    if (node < b) {
      for (int e = 0; e < a; ++e) {
        if (!alg.w(e, node).is_zero() &&
            parent[static_cast<std::size_t>(b + e)] == -2) {
          parent[static_cast<std::size_t>(b + e)] = node;
          queue.push_back(b + e);
        }
      }
    } else {
      const int e = node - b;
      for (int q = 0; q < b; ++q) {
        if (!alg.w(e, q).is_zero() &&
            parent[static_cast<std::size_t>(q)] == -2) {
          parent[static_cast<std::size_t>(q)] = node;
          queue.push_back(q);
        }
      }
    }
  }
  return parent;
}

}  // namespace

DecodeRouter::DecodeRouter(const BilinearAlgorithm& alg) : alg_(alg) {
  const int a = alg_.a();
  const int b = alg_.b();
  d1_paths_.resize(static_cast<std::size_t>(a) * static_cast<std::size_t>(b));
  for (int q = 0; q < b; ++q) {
    const std::vector<int> parent = bfs_parents(alg_, q);
    for (int e = 0; e < a; ++e) {
      PR_REQUIRE_MSG(parent[static_cast<std::size_t>(b + e)] != -2,
                     "decoding graph of the base algorithm is disconnected; "
                     "Claim 1 requires connectivity (use Theorem 2 instead)");
      // Reconstruct the simple path q .. e; nodes alternate product /
      // output because D_1 is bipartite.
      std::vector<int> path;
      for (int node = b + e; node != -1;
           node = parent[static_cast<std::size_t>(node)]) {
        path.push_back(node < b ? node : node - b);
      }
      std::reverse(path.begin(), path.end());
      PR_ASSERT(path.size() % 2 == 0);  // starts at a product, ends at an output
      d1_paths_[static_cast<std::size_t>(q) * static_cast<std::size_t>(a) +
                static_cast<std::size_t>(e)] = std::move(path);
    }
  }
}

void DecodeRouter::append_path(const cdag::SubComputation& sub,
                               std::uint64_t q_word, std::uint64_t e_word,
                               std::vector<cdag::VertexId>& out) const {
  const cdag::Layout& layout = sub.cdag().layout();
  const int k = sub.k();
  const auto& pow_a = layout.pow_a();
  const auto& pow_b = layout.pow_b();
  // Start at the D_k input: the product vertex.
  out.push_back(sub.dec(0, q_word, 0));
  // Levels innermost (l = k) to outermost (l = 1). At level l we sit at
  // dec rank k-l on block (q_1..q_{l-1}, x) with output suffix
  // (e_{l+1}..e_k) already fixed, and zig-zag to x = e_l.
  for (int l = k; l >= 1; --l) {
    const int rank = k - l;
    const std::uint64_t ctx = q_word / pow_b(k - l + 1);      // q_1..q_{l-1}
    const int ql = static_cast<int>((q_word / pow_b(k - l)) %
                                    static_cast<std::uint64_t>(alg_.b()));
    const int el = static_cast<int>(support::digit_at(pow_a, e_word, k, l - 1));
    const std::uint64_t suffix = e_word % pow_a(k - l);        // e_{l+1}..e_k
    const std::vector<int>& path = d1_path(ql, el);
    // path = (x_0=ql, y_1, x_1, ..., y_m=el); x_0's vertex is already
    // the last one appended, so emit from y_1 on.
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (i % 2 == 1) {  // output node y: one rank up
        out.push_back(sub.dec(
            rank + 1, ctx,
            static_cast<std::uint64_t>(path[i]) * pow_a(k - l) + suffix));
      } else {  // product node x: back down
        out.push_back(sub.dec(
            rank, ctx * static_cast<std::uint64_t>(alg_.b()) +
                      static_cast<std::uint64_t>(path[i]),
            suffix));
      }
    }
  }
}

std::vector<std::uint64_t> count_decode_hits(const DecodeRouter& router,
                                             const cdag::SubComputation& sub) {
  const obs::TraceSpan span("routing.count_decode_hits");
  const std::uint64_t n = sub.cdag().graph().num_vertices();
  const std::uint64_t num_q = sub.num_products();
  const std::uint64_t num_e = sub.inputs_per_side();
  // Parallel over products into one shared counter array (relaxed
  // atomic adds, exactly commutative), so counts are thread-count
  // independent and the working set does not grow with PR_THREADS.
  parallel::HitCounter hits(n);
  const std::uint64_t grain = parallel::work_grain(
      num_q, /*per_item_cost=*/num_e * static_cast<std::uint64_t>(
                                           2 * sub.k() + 2));
  parallel::parallel_for(
      0, num_q, grain, [&](std::uint64_t lo, std::uint64_t hi) {
        std::vector<cdag::VertexId> path;
        for (std::uint64_t q = lo; q < hi; ++q) {
          for (std::uint64_t e = 0; e < num_e; ++e) {
            path.clear();
            router.append_path(sub, q, e, path);
            for (const cdag::VertexId v : path) hits.add(v);
          }
        }
      });
  static obs::Counter obs_paths("routing.decode_paths_enumerated");
  obs_paths.add(num_q * num_e);
  return hits.take();
}

HitStats verify_decode_routing(const DecodeRouter& router,
                               const cdag::SubComputation& sub) {
  const cdag::Layout& layout = sub.cdag().layout();
  const int k = sub.k();
  HitStats stats;
  const std::uint64_t big =
      std::max(layout.pow_a()(k), layout.pow_b()(k));
  stats.bound = static_cast<std::uint64_t>(router.d1_size()) * big;
  stats.num_paths = sub.num_products() * sub.inputs_per_side();
  const std::vector<std::uint64_t> hits = count_decode_hits(router, sub);
  for (std::uint64_t v = 0; v < hits.size(); ++v) {
    if (hits[v] > stats.max_hits) {
      stats.max_hits = hits[v];
      stats.argmax = static_cast<cdag::VertexId>(v);
    }
  }
  return stats;
}

}  // namespace pathrouting::routing
