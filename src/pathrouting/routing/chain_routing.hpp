// Lemma 3: a 2*n0^k-routing of *chains* for all guaranteed dependencies
// of G_k, built by applying the base matching (Theorem 3) digit by digit
// (the Claim 2 recursion, implemented iteratively over Morton digits).
//
// The chain for the guaranteed dependence (input (d_1..d_k), output
// (e_1..e_k)) climbs the encoding using q_t = mu(d_t, e_t) at level t —
// the matching guarantees U[q_t, d_t] != 0 and W[e_t, q_t] != 0, so
// every hop is an edge of G_r — reaches product (q_1..q_k), and descends
// the decoding to the output. Chains have exactly 2k+2 vertices.
#pragma once

#include <cstdint>
#include <vector>

#include "pathrouting/cdag/subcomputation.hpp"
#include "pathrouting/routing/guaranteed.hpp"
#include "pathrouting/routing/hall.hpp"

namespace pathrouting::routing {

using cdag::SubComputation;
using cdag::VertexId;

class ChainRouter {
 public:
  /// Computes the Theorem-3 base matchings for both sides. Aborts if
  /// either matching is infeasible (Lemma 5 rules this out for correct
  /// algorithms whose combinations feed single multiplications).
  explicit ChainRouter(const BilinearAlgorithm& alg);

  [[nodiscard]] const BilinearAlgorithm& algorithm() const { return alg_; }
  [[nodiscard]] const BaseMatching& matching(Side side) const {
    return side == Side::A ? mu_a_ : mu_b_;
  }

  /// Appends the 2k+2 chain vertices for the guaranteed dependence
  /// (vpos on `side` -> wpos) of `sub`, bottom-up (input first).
  void append_chain(const SubComputation& sub, Side side, std::uint64_t vpos,
                    std::uint64_t wpos, std::vector<VertexId>& out) const;

  /// The same chain walked from its output back to its input (Lemma 4
  /// traverses the middle chain in reverse); `skip_first` drops the
  /// output vertex when it is a junction the caller already emitted.
  void append_chain_reversed(const SubComputation& sub, Side side,
                             std::uint64_t vpos, std::uint64_t wpos,
                             bool skip_first,
                             std::vector<VertexId>& out) const;

  /// The chain minus its input vertex (Lemma 4's third chain starts at
  /// the junction the reversed middle chain just ended on).
  void append_chain_tail(const SubComputation& sub, Side side,
                         std::uint64_t vpos, std::uint64_t wpos,
                         std::vector<VertexId>& out) const;

 private:
  /// The Claim-2 recursion word q_1..q_k = mu(d_t, e_t) digit by digit.
  [[nodiscard]] std::uint64_t chain_q_word(const SubComputation& sub,
                                           Side side, std::uint64_t vpos,
                                           std::uint64_t wpos) const;

  BilinearAlgorithm alg_;
  BaseMatching mu_a_;
  BaseMatching mu_b_;
};

/// Per-vertex hit counts of the full Lemma-3 chain routing (all
/// guaranteed dependencies, both sides) of `sub`. `hits` is indexed by
/// *global* vertex id of sub's owning CDAG. Counting parallelizes over
/// inputs (PR_THREADS) with bit-identical results at any thread count;
/// `argmax` is the smallest vertex id attaining `max_hits`.
struct ChainHitCounts {
  std::vector<std::uint64_t> hits;
  std::uint64_t num_chains = 0;
  std::uint64_t max_hits = 0;
  VertexId argmax = 0;
};
ChainHitCounts count_chain_hits(const ChainRouter& router,
                                const SubComputation& sub);

/// Lemma 3 verification: max hits <= bound = 2*n0^k.
struct HitStats {
  std::uint64_t num_paths = 0;
  std::uint64_t max_hits = 0;
  std::uint64_t bound = 0;
  VertexId argmax = 0;
  [[nodiscard]] bool ok() const { return max_hits <= bound; }
};
HitStats verify_chain_routing(const ChainRouter& router,
                              const SubComputation& sub);

/// The Lemma-3 stats of an already-computed hit array (shared by the
/// brute-force path above and the memoized engine, so both engines
/// produce the verdict from counts through one code path).
HitStats chain_stats_from_counts(const ChainHitCounts& counts,
                                 const SubComputation& sub);

}  // namespace pathrouting::routing
