// Guaranteed dependencies of G_k (Section 7): input-output pairs that
// every correct matrix multiplication algorithm must connect.
//
// An A-input at Morton position p (digits d_1..d_k, d = (i,j)) has a
// guaranteed dependence on output position p' (digits e_1..e_k) iff
// row(d_t) == row(e_t) at every level t; B-inputs pair by columns. Each
// input therefore has exactly n0^k guaranteed outputs, indexed by a free
// base-n0 word (the unconstrained column/row digits).
#pragma once

#include <cstdint>

#include "pathrouting/cdag/layout.hpp"

namespace pathrouting::routing {

using bilinear::Side;
using cdag::Layout;

/// True iff (input position `vpos` on `side`, output position `wpos`)
/// is a guaranteed dependence in G_k (k = layout.r() when routing a
/// whole CDAG; positions are length-k Morton words).
bool is_guaranteed_dep(const Layout& layout, int k, Side side,
                       std::uint64_t vpos, std::uint64_t wpos);

/// The `free`-th guaranteed output of input `vpos` (0 <= free < n0^k):
/// keeps the constrained digit halves of vpos and substitutes the
/// digits of `free` for the unconstrained halves.
std::uint64_t guaranteed_output(const Layout& layout, int k, Side side,
                                std::uint64_t vpos, std::uint64_t free);

/// Number of guaranteed outputs per input: n0^k.
std::uint64_t guaranteed_fanout(const Layout& layout, int k);

}  // namespace pathrouting::routing
