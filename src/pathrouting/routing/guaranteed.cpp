#include "pathrouting/routing/guaranteed.hpp"

#include "pathrouting/support/check.hpp"

namespace pathrouting::routing {

bool is_guaranteed_dep(const Layout& layout, int k, Side side,
                       std::uint64_t vpos, std::uint64_t wpos) {
  const cdag::RowCol v = cdag::morton_to_rowcol(layout.pow_a(), layout.n0(),
                                                vpos, k);
  const cdag::RowCol w = cdag::morton_to_rowcol(layout.pow_a(), layout.n0(),
                                                wpos, k);
  // Digit-wise row (resp. column) equality is equality of the whole
  // interleaved row (resp. column) word.
  return side == Side::A ? v.row == w.row : v.col == w.col;
}

std::uint64_t guaranteed_output(const Layout& layout, int k, Side side,
                                std::uint64_t vpos, std::uint64_t free) {
  PR_REQUIRE(free < guaranteed_fanout(layout, k));
  const cdag::RowCol v = cdag::morton_to_rowcol(layout.pow_a(), layout.n0(),
                                                vpos, k);
  // A-inputs fix the output's row word; B-inputs fix its column word.
  return side == Side::A
             ? cdag::rowcol_to_morton(layout.n0(), v.row, free, k)
             : cdag::rowcol_to_morton(layout.n0(), free, v.col, k);
}

std::uint64_t guaranteed_fanout(const Layout& layout, int k) {
  std::uint64_t fanout = 1;
  for (int i = 0; i < k; ++i) fanout *= static_cast<std::uint64_t>(layout.n0());
  return fanout;
}

}  // namespace pathrouting::routing
