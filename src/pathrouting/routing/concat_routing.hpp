// Lemma 4 and the Routing Theorem (Theorem 2).
//
// Lemma 4 turns the chain routing for guaranteed dependencies into a
// routing between ALL inputs and ALL outputs by concatenating three
// chains along the paper's sequences
//     a_ij -> c_ij'  <- b_jj' -> c_i'j'      (A-side inputs)
//     b_ij -> c_i'j  <- a_i'i -> c_i'j'      (B-side inputs)
// (the middle chain is traversed in reverse). Every chain is used by
// exactly 3*n0^k of the 2*a^{2k} paths, so with Lemma 3's 2*n0^k bound
// per vertex the composite routing hits every vertex at most
// 6*a^k times — Theorem 2. The same bound holds for meta-vertices
// because any chain hitting a meta-vertex passes through its root.
//
// Two verifiers are provided: an exact aggregated count (chain hit
// counts x the uniform multiplicity 3*n0^k; cheap, any k) and a full
// path enumeration (small k; also checks the meta-vertex claims and the
// junction structure directly).
#pragma once

#include "pathrouting/routing/chain_routing.hpp"

namespace pathrouting::routing {

/// Materializes the Lemma-4 path for (input vpos on `in_side` -> output
/// wpos): the three chains concatenated with the duplicated junction
/// vertices removed. Appends to `out`.
void append_full_path(const ChainRouter& router, const SubComputation& sub,
                      Side in_side, std::uint64_t vpos, std::uint64_t wpos,
                      std::vector<VertexId>& out);

/// Lemma 4's accounting: enumerates all 2*a^{2k} input-output pairs and
/// counts how many times each chain (identified by side/input/output) is
/// used; returns true iff every chain is used exactly 3*n0^k times.
bool verify_chain_multiplicities(const ChainRouter& router,
                                 const SubComputation& sub);

struct FullRoutingStats {
  std::uint64_t num_paths = 0;
  std::uint64_t max_vertex_hits = 0;
  VertexId argmax_vertex = 0;
  std::uint64_t max_meta_hits = 0;  // paths hitting a meta-vertex (deduped)
  std::uint64_t bound = 0;          // 6 * a^k
  bool root_hit_property = true;    // every meta hit passes through the root
  [[nodiscard]] bool ok() const {
    return max_vertex_hits <= bound && max_meta_hits <= bound &&
           root_hit_property;
  }
};

/// Theorem 2 verification by full enumeration of the |In||Out| paths.
/// Cost: 2*a^{2k} paths of ~6k vertices; keep k small (<= 4 for n0=2).
FullRoutingStats verify_full_routing_enumerated(const ChainRouter& router,
                                                const SubComputation& sub);

/// Theorem 2 verification via the exact identity
///   hits(v) = 3*n0^k * chain_hits(v)
/// (every chain is used exactly 3*n0^k times; see
/// verify_chain_multiplicities). Meta hits equal the root's vertex hits
/// because chains hit a meta-vertex iff they pass its root. Cheap
/// enough for any k the CDAG itself fits in memory.
FullRoutingStats verify_full_routing_aggregated(const ChainRouter& router,
                                                const SubComputation& sub);

/// The aggregated Theorem-2 verdict from an already-computed chain hit
/// array (shared by verify_full_routing_aggregated and the memoized
/// engine: both produce Lemma-3 counts, then derive Theorem 2 here).
FullRoutingStats full_routing_from_chain_counts(const SubComputation& sub,
                                                const ChainHitCounts& chains);

}  // namespace pathrouting::routing
