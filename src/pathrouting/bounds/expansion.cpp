#include "pathrouting/bounds/expansion.hpp"

#include <cmath>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "pathrouting/support/check.hpp"
#include "pathrouting/support/prng.hpp"

namespace pathrouting::bounds {

using cdag::Graph;
using cdag::VertexId;

ExpansionEstimate estimate_expansion(const Graph& graph,
                                     std::span<const VertexId> vertices,
                                     std::uint64_t seed, int iterations) {
  PR_REQUIRE(!vertices.empty());
  PR_REQUIRE(iterations >= 1);
  // Compact the induced subgraph (undirected).
  std::unordered_map<VertexId, std::uint32_t> local;
  local.reserve(vertices.size() * 2);
  for (const VertexId v : vertices) {
    local.emplace(v, static_cast<std::uint32_t>(local.size()));
  }
  const std::size_t n = local.size();
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (const VertexId v : vertices) {
    const std::uint32_t lv = local.at(v);
    for (const VertexId p : graph.in(v)) {
      if (const auto it = local.find(p); it != local.end()) {
        adj[lv].push_back(it->second);
        adj[it->second].push_back(lv);
      }
    }
  }

  ExpansionEstimate est;
  // Connected components (isolated vertices count).
  {
    std::vector<std::uint32_t> parent(n);
    std::iota(parent.begin(), parent.end(), 0);
    const auto find = [&](std::uint32_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    for (std::uint32_t v = 0; v < n; ++v) {
      for (const std::uint32_t w : adj[v]) parent[find(v)] = find(w);
    }
    for (std::uint32_t v = 0; v < n; ++v) est.components += find(v) == v;
  }
  if (est.components > 1) {
    // lambda2 = 1 exactly: the indicator of one component (centred) is
    // a fixed point of the walk.
    est.lambda2 = 1.0;
    return est;
  }

  // Deflated power iteration on the lazy walk W = (I + D^-1 A)/2. The
  // top eigenpair is (1, constant); deflate in the pi-weighted inner
  // product (pi proportional to degree).
  std::vector<double> degree(n);
  double total_degree = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    degree[v] = static_cast<double>(adj[v].size());
    total_degree += degree[v];
  }
  support::Xoshiro256 rng(seed);
  std::vector<double> x(n), next(n);
  for (double& value : x) value = rng.uniform01() - 0.5;
  double lambda = 0;
  for (int it = 0; it < iterations; ++it) {
    // Deflate: subtract the pi-weighted mean.
    double mean = 0;
    for (std::uint32_t v = 0; v < n; ++v) mean += degree[v] * x[v];
    mean /= total_degree;
    for (double& value : x) value -= mean;
    // Apply the lazy walk.
    double norm = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      double sum = 0;
      for (const std::uint32_t w : adj[v]) sum += x[w];
      next[v] = 0.5 * x[v] + (degree[v] > 0 ? 0.5 * sum / degree[v] : 0.0);
      norm += degree[v] * next[v] * next[v];
    }
    // Rayleigh quotient in the pi inner product.
    double dot = 0, xx = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      dot += degree[v] * x[v] * next[v];
      xx += degree[v] * x[v] * x[v];
    }
    lambda = xx > 0 ? dot / xx : 1.0;
    const double scale = norm > 0 ? 1.0 / std::sqrt(norm) : 1.0;
    for (std::uint32_t v = 0; v < n; ++v) x[v] = next[v] * scale;
  }
  est.lambda2 = lambda;
  return est;
}

}  // namespace pathrouting::bounds
