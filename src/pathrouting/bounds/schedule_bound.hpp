// Admissible lower bounds for partial schedules — the pruning bound of
// the schedule-space search (search/optimizer.hpp) and the quantity the
// search.certified-optimal audit rule re-derives independently.
//
// A state of the search is a prefix P of a topological order of the
// non-input vertices. For ANY completion of P, executed by ANY
// replacement behavior on a capacity-M cache, the total I/O is at least
//
//   MIN-fetches(P, M) + untouched(P) + max(0, live(P) - M) + outputs
//
// where
//  * MIN-fetches(P, M): the offline-optimal (Belady/MIN) fetch count of
//    P's operand-access string on a capacity-M cache. The access string
//    (operands staged, results born into cache) is fixed by P, and
//    demand fetching with furthest-next-use eviction minimizes fetches
//    over every replacement and prefetch behavior on a fixed string, so
//    no execution can pay fewer reads during P's steps — holding values
//    for the suffix only costs capacity;
//  * untouched(P): inputs never accessed during P but consumed by at
//    least one unscheduled vertex — each costs a compulsory read in the
//    suffix;
//  * max(0, live(P) - M): live(P) counts values touched or computed
//    during P that still have an unscheduled consumer. At most M of
//    them can cross the prefix/suffix boundary inside the cache; every
//    other one must re-enter the cache by a read (recomputation is
//    forbidden). This is the capacity half of the Hong-Kung partition
//    argument (bounds/hong_kung.hpp): a suffix whose dominator set
//    exceeds the boundary cache state must pay the difference in I/O;
//  * outputs: every non-input output vertex is written to slow memory
//    at least once, and no write is counted by the read terms.
//
// The three read terms are disjoint in time and in value set, so the
// sum — not just the max — is admissible. With an empty prefix the
// bound degenerates to the compulsory traffic (consumed inputs +
// outputs); the search max-combines that root value with the paper's
// schedule-independent closed form (bounds::theorem1_io_lower_bound,
// the Section 6 segment inequality), which is also admissible for
// every topological order of G_r.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "pathrouting/cdag/graph.hpp"

namespace pathrouting::bounds {

using cdag::Graph;
using cdag::VertexId;

struct PartialBound {
  /// MIN-optimal fetch count over the prefix's access string.
  std::uint64_t prefix_reads = 0;
  /// Compulsory suffix reads: untouched needed inputs plus the
  /// boundary-capacity overflow max(0, live - M).
  std::uint64_t suffix_reads = 0;
  /// One write per non-input output vertex of the whole graph.
  std::uint64_t output_writes = 0;
  [[nodiscard]] std::uint64_t total() const {
    return prefix_reads + suffix_reads + output_writes;
  }
};

/// The admissible bound above. `prefix` must be a valid topological
/// prefix over non-input vertices (no vertex twice, operands scheduled
/// or inputs); `cache_size` must admit every prefix step
/// (in-degree + 1 <= M). An empty prefix yields the root bound.
PartialBound partial_schedule_lower_bound(
    const Graph& graph, std::span<const VertexId> prefix,
    std::uint64_t cache_size,
    const std::function<bool(VertexId)>& is_output);

}  // namespace pathrouting::bounds
