#include "pathrouting/bounds/segment_certifier.hpp"

#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/obs/obs.hpp"
#include "pathrouting/support/parallel.hpp"

namespace pathrouting::bounds {

namespace {

using cdag::Cdag;
using cdag::CdagView;
using cdag::ExplicitView;
using cdag::Layout;
using bilinear::Side;

/// Members of each meta-vertex grouped by root (CSR over vertex ids).
struct MetaMembers {
  std::vector<std::uint32_t> off;
  std::vector<VertexId> members;
};

MetaMembers group_by_root(const CdagView& view) {
  const VertexId n = static_cast<VertexId>(view.num_vertices());
  MetaMembers groups;
  groups.off.assign(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) ++groups.off[view.meta_root(v) + 1];
  for (VertexId v = 0; v < n; ++v) groups.off[v + 1] += groups.off[v];
  groups.members.resize(n);
  std::vector<std::uint32_t> cursor(groups.off.begin(), groups.off.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    groups.members[cursor[view.meta_root(v)]++] = v;
  }
  return groups;
}

/// Shared segment-walk driver. `counted[root]` is the number of counted
/// vertices in each meta-vertex (0 or 1); `boundary_size(seg_roots,
/// seg_id)` computes the boundary of the closed segment. Adjacency goes
/// through the view, so the walk needs no CSR arrays — only its own
/// O(num_vertices) stamps (a schedule is that long regardless).
template <typename BoundaryFn>
CertifyResult walk_segments(const CdagView& view,
                            std::span<const VertexId> schedule,
                            std::uint64_t s_bar_target,
                            const std::vector<std::uint8_t>& counted,
                            const BoundaryFn& boundary_size) {
  CertifyResult result;
  result.s_bar_target = s_bar_target;
  const VertexId n = static_cast<VertexId>(view.num_vertices());
  std::vector<std::uint32_t> in_s_stamp(n, 0);
  std::vector<std::uint32_t> computed_stamp(n, 0);
  std::vector<std::uint32_t> rv_stamp(n, 0);
  std::vector<VertexId> in_scratch, out_scratch;
  std::vector<VertexId> seg_roots;
  std::uint32_t seg_start = 0;
  std::uint32_t seg_id = 1;
  std::uint64_t s_bar = 0;
  for (std::uint32_t s = 0; s < schedule.size(); ++s) {
    computed_stamp[schedule[s]] = seg_id;
    const VertexId root = view.meta_root(schedule[s]);
    if (in_s_stamp[root] != seg_id) {
      in_s_stamp[root] = seg_id;
      seg_roots.push_back(root);
      s_bar += counted[root];
    }
    const bool last_step = s + 1 == schedule.size();
    if (s_bar == s_bar_target || (last_step && s_bar > 0)) {
      SegmentReport report;
      report.end_step = s + 1;
      report.s_bar = s_bar;
      report.complete = s_bar == s_bar_target;
      report.boundary = boundary_size(seg_roots, in_s_stamp, seg_id);
      // Vertex-level boundary over the computed set: operands staged
      // from outside (R) plus computed values consumed after the
      // segment or required as outputs (W).
      std::uint64_t rv = 0, wv = 0;
      for (std::uint32_t t = seg_start; t <= s; ++t) {
        const VertexId v = schedule[t];
        for (const VertexId p : view.in(v, in_scratch)) {
          if (computed_stamp[p] != seg_id && rv_stamp[p] != seg_id) {
            rv_stamp[p] = seg_id;
            ++rv;
          }
        }
        bool used_later = view.out_degree(v) == 0;  // outputs persist
        for (const VertexId q : view.out(v, out_scratch)) {
          if (computed_stamp[q] != seg_id) {
            used_later = true;
            break;
          }
        }
        if (used_later) ++wv;
      }
      report.boundary_vertices = rv + wv;
      result.segments.push_back(report);
      seg_roots.clear();
      s_bar = 0;
      seg_start = s + 1;
      ++seg_id;
    }
  }
  return result;
}

}  // namespace

bool CertifyResult::eq_holds(std::uint64_t denominator) const {
  for (const SegmentReport& seg : segments) {
    if (seg.complete && seg.boundary * denominator < seg.s_bar) return false;
  }
  return true;
}

bool CertifyResult::boundary_ge(std::uint64_t threshold) const {
  for (const SegmentReport& seg : segments) {
    if (seg.complete && seg.boundary < threshold) return false;
  }
  return true;
}

std::uint64_t CertifyResult::complete_segments() const {
  std::uint64_t count = 0;
  for (const SegmentReport& seg : segments) count += seg.complete ? 1 : 0;
  return count;
}

std::vector<std::uint32_t> CertifyResult::segment_ends(
    std::uint32_t schedule_size) const {
  std::vector<std::uint32_t> ends;
  ends.reserve(segments.size() + 1);
  for (const SegmentReport& seg : segments) ends.push_back(seg.end_step);
  if (ends.empty() || ends.back() != schedule_size) {
    ends.push_back(schedule_size);
  }
  return ends;
}

CertifyResult certify_segments(const CdagView& view,
                               std::span<const VertexId> schedule,
                               const CertifyParams& params) {
  const obs::TraceSpan span("certify.segments");
  const Layout& layout = view.layout();
  PR_REQUIRE(params.cache_size >= 1);
  const std::uint64_t target = params.s_bar_target != 0
                                   ? params.s_bar_target
                                   : 36 * params.cache_size;
  const int k = params.k >= 0
                    ? params.k
                    : ceil_log(static_cast<std::uint64_t>(layout.a()),
                               2 * target);
  PR_REQUIRE_MSG(layout.pow_a()(k) >= 2 * target,
                 "need a^k >= 2 |S_bar| for the half-rank argument");
  PR_REQUIRE_MSG(k <= layout.r() - 2, "need k <= r-2 (Lemma 1)");

  const DisjointFamily family = build_disjoint_family(view, k);
  // Counted vertices: inputs and outputs of the family's members. By
  // Lemma 2 their meta-vertices are all distinct — asserted below.
  std::vector<std::uint8_t> counted(view.num_vertices(), 0);
  std::uint64_t counted_total = 0;
  const int in_rank = layout.r() - k;
  const std::uint64_t per_side = layout.pow_a()(k);
  for (const std::uint64_t prefix : family.prefixes) {
    const auto count_vertex = [&](VertexId v) {
      const VertexId root = view.meta_root(v);
      PR_ASSERT_MSG(!counted[root],
                    "two counted vertices share a meta-vertex (Lemma 2)");
      counted[root] = 1;
      ++counted_total;
    };
    for (const Side side : {Side::A, Side::B}) {
      for (std::uint64_t p = 0; p < per_side; ++p) {
        count_vertex(layout.enc(side, in_rank, prefix, p));
      }
    }
    for (std::uint64_t p = 0; p < per_side; ++p) {
      count_vertex(layout.dec(k, prefix, p));
    }
  }

  const MetaMembers groups = group_by_root(view);
  std::vector<std::uint32_t> boundary_stamp(view.num_vertices(), 0);
  std::vector<VertexId> in_scratch, out_scratch;
  // Meta-level boundary in the Definition-1 style: R'(S') = meta-
  // vertices OUTSIDE S' feeding into it (each must be staged into cache
  // during the segment), plus W'(S') = meta-vertices INSIDE S' with a
  // successor outside (each must eventually reach slow memory or stay
  // cached). The paper's delta'-notation describes only the adjacency;
  // this mixed form is the one the I/O accounting actually bounds —
  // counting *outside* successors instead would overcount, since many
  // of them can share a single written value.
  const auto boundary = [&](const std::vector<VertexId>& seg_roots,
                            const std::vector<std::uint32_t>& in_s_stamp,
                            std::uint32_t seg_id) {
    std::uint64_t size = 0;
    for (const VertexId root : seg_roots) {
      bool writes_out = false;
      for (std::uint32_t i = groups.off[root]; i < groups.off[root + 1]; ++i) {
        const VertexId member = groups.members[i];
        for (const VertexId p : view.in(member, in_scratch)) {
          const VertexId nb_root = view.meta_root(p);
          if (in_s_stamp[nb_root] != seg_id &&
              boundary_stamp[nb_root] != seg_id) {
            boundary_stamp[nb_root] = seg_id;
            ++size;  // R'-side
          }
        }
        if (!writes_out) {
          for (const VertexId q : view.out(member, out_scratch)) {
            if (in_s_stamp[view.meta_root(q)] != seg_id) {
              writes_out = true;
              break;
            }
          }
        }
      }
      if (writes_out) ++size;  // W'-side, once per inside meta-vertex
    }
    return size;
  };

  CertifyResult result =
      walk_segments(view, schedule, target, counted, boundary);
  result.k = k;
  result.family_size = family.prefixes.size();
  result.family_guaranteed = family.guaranteed;
  result.counted_total = counted_total;
  static obs::Counter obs_runs("certify.runs");
  static obs::Counter obs_segments("certify.segments");
  obs_runs.add();
  obs_segments.add(result.segments.size());
  return result;
}

CertifyResult certify_segments(const Cdag& cdag,
                               std::span<const VertexId> schedule,
                               const CertifyParams& params) {
  return certify_segments(ExplicitView(cdag), schedule, params);
}

CertifyResult certify_segments_decode_only(const CdagView& view,
                                           std::span<const VertexId> schedule,
                                           const CertifyParams& params) {
  const obs::TraceSpan span("certify.segments_decode_only");
  const Layout& layout = view.layout();
  PR_REQUIRE(params.cache_size >= 1);
  const std::uint64_t target = params.s_bar_target != 0
                                   ? params.s_bar_target
                                   : 66 * params.cache_size;
  const int k = params.k >= 0
                    ? params.k
                    : ceil_log(static_cast<std::uint64_t>(layout.a()),
                               2 * target);
  PR_REQUIRE_MSG(layout.pow_a()(k) >= 2 * target,
                 "need a^k >= 2 |S_bar| for the half-rank argument");
  PR_REQUIRE_MSG(k <= layout.r(), "need k <= r");

  // Counted: every vertex on decoding rank k. The decoding graph never
  // copies, so each sits alone in its meta-vertex.
  std::vector<std::uint8_t> counted(view.num_vertices(), 0);
  std::uint64_t counted_total = 0;
  const std::uint64_t num_q = layout.pow_b()(layout.r() - k);
  const std::uint64_t num_p = layout.pow_a()(k);
  for (std::uint64_t q = 0; q < num_q; ++q) {
    for (std::uint64_t p = 0; p < num_p; ++p) {
      const VertexId v = layout.dec(k, q, p);
      PR_ASSERT(view.meta_root(v) == v);
      counted[v] = 1;
      ++counted_total;
    }
  }

  const MetaMembers groups = group_by_root(view);
  std::vector<std::uint32_t> vertex_in_s(view.num_vertices(), 0);
  std::vector<std::uint32_t> boundary_stamp(view.num_vertices(), 0);
  std::vector<VertexId> in_scratch, out_scratch;
  // Vertex-level boundary delta(S) = R(S) u W(S), where S is the
  // meta-closure of the segment's computed vertices.
  const auto boundary = [&](const std::vector<VertexId>& seg_roots,
                            const std::vector<std::uint32_t>& in_s_stamp,
                            std::uint32_t seg_id) {
    for (const VertexId root : seg_roots) {
      for (std::uint32_t i = groups.off[root]; i < groups.off[root + 1]; ++i) {
        vertex_in_s[groups.members[i]] = seg_id;
      }
    }
    std::uint64_t size = 0;
    for (const VertexId root : seg_roots) {
      for (std::uint32_t i = groups.off[root]; i < groups.off[root + 1]; ++i) {
        const VertexId member = groups.members[i];
        // R(S): predecessors outside S.
        for (const VertexId p : view.in(member, in_scratch)) {
          if (vertex_in_s[p] != seg_id && boundary_stamp[p] != seg_id) {
            boundary_stamp[p] = seg_id;
            ++size;
          }
        }
        // W(S): members with a successor outside S.
        for (const VertexId q : view.out(member, out_scratch)) {
          if (vertex_in_s[q] != seg_id) {
            if (boundary_stamp[member] != seg_id) {
              boundary_stamp[member] = seg_id;
              ++size;
            }
            break;
          }
        }
      }
    }
    (void)in_s_stamp;
    return size;
  };

  CertifyResult result =
      walk_segments(view, schedule, target, counted, boundary);
  result.k = k;
  result.counted_total = counted_total;
  static obs::Counter obs_runs("certify.runs");
  static obs::Counter obs_segments("certify.segments");
  obs_runs.add();
  obs_segments.add(result.segments.size());
  return result;
}

CertifyResult certify_segments_decode_only(const Cdag& cdag,
                                           std::span<const VertexId> schedule,
                                           const CertifyParams& params) {
  return certify_segments_decode_only(ExplicitView(cdag), schedule, params);
}

std::vector<CertifyResult> certify_segments_batch(
    const CdagView& view, std::span<const CertifyJob> jobs) {
  std::vector<CertifyResult> results(jobs.size());
  // Each job re-derives its own family/grouping/stamps and writes only
  // its slot; grain 1 so long and short certifications interleave.
  support::parallel::parallel_for(
      0, jobs.size(), /*grain=*/1, [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          const CertifyJob& job = jobs[i];
          results[i] = job.decode_only
                           ? certify_segments_decode_only(view, job.schedule,
                                                          job.params)
                           : certify_segments(view, job.schedule, job.params);
        }
      });
  return results;
}

std::vector<CertifyResult> certify_segments_batch(
    const cdag::Cdag& cdag, std::span<const CertifyJob> jobs) {
  return certify_segments_batch(ExplicitView(cdag), jobs);
}

}  // namespace pathrouting::bounds
