#include "pathrouting/bounds/formulas.hpp"

#include <algorithm>
#include <cmath>

#include "pathrouting/support/check.hpp"

namespace pathrouting::bounds {

int ceil_log(std::uint64_t base, std::uint64_t threshold) {
  PR_REQUIRE(base >= 2);
  PR_REQUIRE(threshold >= 1);
  int k = 0;
  std::uint64_t power = 1;
  while (power < threshold) {
    PR_REQUIRE_MSG(power <= UINT64_MAX / base, "ceil_log overflow");
    power *= base;
    ++k;
  }
  return k;
}

std::uint64_t theorem1_io_lower_bound(int a, int b, int r, std::uint64_t m) {
  PR_REQUIRE(a >= 4 && b >= 2 && r >= 1 && m >= 1);
  const int k = ceil_log(static_cast<std::uint64_t>(a), 72 * m);
  if (k > r - 2) return 0;
  // 3 a^k b^{r-k} / b^2: counted rank size within the input-disjoint
  // fraction; divided by the segment quota 36M, each complete segment
  // costs at least M.
  long double numerator = 3.0L;
  for (int i = 0; i < k; ++i) numerator *= static_cast<long double>(a);
  for (int i = 0; i < r - k; ++i) numerator *= static_cast<long double>(b);
  numerator /= static_cast<long double>(b) * static_cast<long double>(b);
  const long double segments = numerator / (36.0L * static_cast<long double>(m));
  return static_cast<std::uint64_t>(std::floor(segments)) * m;
}

std::uint64_t section5_io_lower_bound(int r, std::uint64_t m) {
  PR_REQUIRE(r >= 1 && m >= 1);
  const int k = ceil_log(4, 132 * m);
  if (k > r) return 0;
  long double numerator = 1.0L;
  for (int i = 0; i < k; ++i) numerator *= 4.0L;
  for (int i = 0; i < r - k; ++i) numerator *= 7.0L;
  const long double segments = numerator / (66.0L * static_cast<long double>(m));
  return static_cast<std::uint64_t>(std::floor(segments)) * m;
}

double omega0(int a, int b) {
  return 2.0 * std::log(static_cast<double>(b)) /
         std::log(static_cast<double>(a));
}

double asymptotic_io(double n, double m, double w0) {
  return std::pow(n / std::sqrt(m), w0) * m;
}

double hong_kung_classical(double n, double m) {
  return n * n * n / (2.0 * std::sqrt(2.0 * m)) - m;
}

double dfs_io_model(int a, int b, std::uint64_t e_u, std::uint64_t e_v,
                    std::uint64_t e_w, int r, std::uint64_t m,
                    double fit_factor) {
  PR_REQUIRE(a >= 4 && b >= 1 && r >= 0 && m >= 1);
  double pow_a = 1.0;
  int k = 0;
  // Largest k whose subproblem fits in cache.
  while (k < r && fit_factor * pow_a * a <= static_cast<double>(m)) {
    pow_a *= a;
    ++k;
  }
  double cost = 3.0 * pow_a;  // in-cache base case: read 2 a^k, write a^k
  const double step = static_cast<double>(e_u + e_v + 2 * static_cast<std::uint64_t>(b) +
                                          e_w + static_cast<std::uint64_t>(a));
  for (; k < r; ++k) {
    cost = step * pow_a + static_cast<double>(b) * cost;
    pow_a *= a;
  }
  return cost;
}

double parallel_bandwidth_lb(double n, double m, double p, double w0) {
  return asymptotic_io(n, m, w0) / p;
}

double memory_independent_lb(double n, double p, double w0) {
  return n * n / std::pow(p, 2.0 / w0);
}

double perfect_scaling_pmax(double n, double m, double w0) {
  return std::pow(n, w0) / std::pow(m, w0 / 2.0);
}

double strong_scaling_lb(double n, double m, double p, double w0) {
  return std::max(parallel_bandwidth_lb(n, m, p, w0),
                  memory_independent_lb(n, p, w0));
}

}  // namespace pathrouting::bounds
