#include "pathrouting/bounds/schedule_bound.hpp"

#include <vector>

#include "pathrouting/support/check.hpp"

namespace pathrouting::bounds {

namespace {

/// Next-use sentinel: no further consumption inside the prefix. As a
/// u32 it sorts above every real step index, so the furthest-next-use
/// comparison needs no special case.
constexpr std::uint32_t kDead = UINT32_MAX;

}  // namespace

PartialBound partial_schedule_lower_bound(
    const Graph& graph, std::span<const VertexId> prefix,
    std::uint64_t cache_size,
    const std::function<bool(VertexId)>& is_output) {
  const VertexId n = graph.num_vertices();
  const std::uint64_t m = cache_size;
  PR_REQUIRE(m >= 2);

  // Consumption steps of each vertex within the prefix, CSR layout
  // (same construction as the simulator's use lists).
  std::vector<std::uint32_t> off(static_cast<std::size_t>(n) + 1, 0);
  for (const VertexId v : prefix) {
    for (const VertexId p : graph.in(v)) ++off[p + 1];
  }
  for (VertexId v = 0; v < n; ++v) off[v + 1] += off[v];
  std::vector<std::uint32_t> steps(off.back());
  std::vector<std::uint32_t> cursor(off.begin(), off.end() - 1);
  for (std::uint32_t s = 0; s < prefix.size(); ++s) {
    for (const VertexId p : graph.in(prefix[s])) steps[cursor[p]++] = s;
  }
  cursor.assign(off.begin(), off.end() - 1);

  PartialBound bound;

  // ---- MIN-fetches over the prefix access string ------------------
  // Demand fetching + furthest-next-use eviction is the offline
  // minimum fetch count on a fixed access string; the victim scan is
  // linear (prefixes are short) and breaks ties to the lowest id, the
  // simulator's documented rule.
  std::vector<std::uint8_t> in_cache(n, 0), scheduled(n, 0), touched(n, 0);
  std::vector<std::uint32_t> next_use(n, kDead), pin(n, 0);
  std::vector<VertexId> cached;

  const auto advance_next_use = [&](VertexId v, std::uint32_t s) {
    std::uint32_t& ptr = cursor[v];
    while (ptr < off[v + 1] && steps[ptr] <= s) ++ptr;
    return ptr < off[v + 1] ? steps[ptr] : kDead;
  };
  const auto evict_one = [&](std::uint32_t stamp) {
    std::size_t best = cached.size();
    for (std::size_t i = 0; i < cached.size(); ++i) {
      const VertexId u = cached[i];
      if (pin[u] == stamp) continue;
      if (best == cached.size()) {
        best = i;
        continue;
      }
      const VertexId w = cached[best];
      if (next_use[u] > next_use[w] ||
          (next_use[u] == next_use[w] && u < w)) {
        best = i;
      }
    }
    PR_ASSERT_MSG(best < cached.size(), "no evictable entry in MIN replay");
    in_cache[cached[best]] = 0;
    cached[best] = cached.back();
    cached.pop_back();
  };
  const auto insert = [&](VertexId v) {
    in_cache[v] = 1;
    cached.push_back(v);
  };

  for (std::uint32_t s = 0; s < prefix.size(); ++s) {
    const VertexId v = prefix[s];
    const auto preds = graph.in(v);
    PR_REQUIRE_MSG(!preds.empty(), "inputs are not scheduled");
    PR_REQUIRE_MSG(preds.size() + 1 <= m, "cache too small for this vertex");
    const std::uint32_t stamp = s + 1;
    for (const VertexId p : preds) pin[p] = stamp;
    for (const VertexId p : preds) {
      touched[p] = 1;
      if (!in_cache[p]) {
        while (cached.size() >= m) evict_one(stamp);
        ++bound.prefix_reads;
        insert(p);
      }
      next_use[p] = advance_next_use(p, s);
    }
    pin[v] = stamp;
    while (cached.size() >= m) evict_one(stamp);
    insert(v);
    scheduled[v] = 1;
    touched[v] = 1;
    next_use[v] = advance_next_use(v, s);
  }

  // ---- compulsory suffix reads ------------------------------------
  // A value is needed when an unscheduled non-input vertex consumes
  // it. Needed values that are themselves unscheduled non-inputs are
  // computed in the suffix (no read); needed untouched inputs cost a
  // compulsory read; needed touched values (inputs staged during the
  // prefix or vertices the prefix computed) can survive the boundary
  // only in cache, which holds at most M of them.
  std::vector<std::uint8_t> needed(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (graph.in_degree(v) == 0 || scheduled[v]) continue;
    for (const VertexId p : graph.in(v)) needed[p] = 1;
  }
  std::uint64_t untouched_inputs = 0, live = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (!needed[v]) continue;
    if (touched[v]) {
      ++live;
    } else if (graph.in_degree(v) == 0) {
      ++untouched_inputs;
    }
  }
  bound.suffix_reads = untouched_inputs + (live > m ? live - m : 0);

  // ---- output writes ----------------------------------------------
  for (VertexId v = 0; v < n; ++v) {
    if (graph.in_degree(v) > 0 && is_output(v)) ++bound.output_writes;
  }
  return bound;
}

}  // namespace pathrouting::bounds
