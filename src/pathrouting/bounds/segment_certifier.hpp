// The segment argument of Sections 5 and 6, run as a *certifier* on a
// concrete schedule.
//
// Section 6 (general Strassen-like): fix k with a^k >= 72M and a
// mutually input-disjoint family C of subcomputations G_k^i (Lemma 1).
// Counted vertices are the inputs (encoding rank r-k) and outputs
// (decoding rank k) of the members of C. Walk the schedule, closing a
// segment S as soon as it contains 36M counted vertices (a vertex drags
// its whole meta-vertex into S; by Lemma 2 each meta-vertex holds at
// most one counted vertex, so the count advances by at most one per
// step). For every complete segment the paper proves
//     |delta'(S')| >= |S_bar| / 12  (Equation 2),
// hence >= 3M, hence at least M I/Os per segment — the certifier
// computes |delta'(S')| exactly from the graph and checks both, and
// also exposes the segment boundaries so the pebble simulator can
// verify the I/O consequence  segment I/O >= |delta'(S')| - 2M  on the
// simulated execution.
//
// Section 5 (decoding-only counting, the "simple proof" for Strassen):
// counted vertices are decoding rank k everywhere, segments close at
// 66M, and the vertex-level boundary satisfies |delta(S)| >= |S_bar|/22
// (Equation 1).
#pragma once

#include <span>
#include <vector>

#include "pathrouting/bounds/disjoint_family.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/view.hpp"

namespace pathrouting::bounds {

using cdag::VertexId;

struct SegmentReport {
  std::uint32_t end_step = 0;  // exclusive schedule index
  std::uint64_t s_bar = 0;     // counted vertices in this segment
  std::uint64_t boundary = 0;  // |delta'(S')| (S6) or |delta(S)| (S5)
  /// Vertex-level |R(S_v)| + |W(S_v)| over exactly the vertices
  /// computed in the segment (no meta-closure): the quantity the
  /// pebble game provably respects per segment,
  ///   attributed I/O >= boundary_vertices - 2M.
  std::uint64_t boundary_vertices = 0;
  bool complete = false;       // reached the quota (last segment may not)

  bool operator==(const SegmentReport&) const = default;
};

struct CertifyResult {
  int k = 0;
  std::uint64_t s_bar_target = 0;
  std::uint64_t family_size = 0;       // |C| (Section 6 only)
  std::uint64_t family_guaranteed = 0; // b^{r-k-2} (Section 6 only)
  std::uint64_t counted_total = 0;     // total counted vertices
  std::vector<SegmentReport> segments;

  /// Both paper inequalities over all complete segments.
  [[nodiscard]] bool eq_holds(std::uint64_t denominator) const;
  [[nodiscard]] bool boundary_ge(std::uint64_t threshold) const;
  [[nodiscard]] std::uint64_t complete_segments() const;
  /// The certified bound: (#complete segments) * M.
  [[nodiscard]] std::uint64_t io_lower_bound(std::uint64_t m) const {
    return complete_segments() * m;
  }
  /// Exclusive end steps of every segment (for pebble attribution).
  [[nodiscard]] std::vector<std::uint32_t> segment_ends(
      std::uint32_t schedule_size) const;

  bool operator==(const CertifyResult&) const = default;
};

struct CertifyParams {
  std::uint64_t cache_size = 0;    // M
  int k = -1;                      // default ceil(log_a (2 * s_bar_target))
  std::uint64_t s_bar_target = 0;  // default 36M (S6) / 66M (S5)
};

/// Section 6 certifier (meta-vertex boundary, input-disjoint family).
/// The view form synthesizes every adjacency/meta query on demand, so
/// it certifies schedules over implicit CDAGs without the O(num_edges)
/// CSR arrays (stamp arrays stay O(num_vertices), which a schedule
/// implies anyway); the Cdag form wraps it and is bit-identical.
CertifyResult certify_segments(const cdag::CdagView& view,
                               std::span<const VertexId> schedule,
                               const CertifyParams& params);
CertifyResult certify_segments(const cdag::Cdag& cdag,
                               std::span<const VertexId> schedule,
                               const CertifyParams& params);

/// Section 5 certifier (vertex boundary, decoding-rank counting).
CertifyResult certify_segments_decode_only(const cdag::CdagView& view,
                                           std::span<const VertexId> schedule,
                                           const CertifyParams& params);
CertifyResult certify_segments_decode_only(const cdag::Cdag& cdag,
                                           std::span<const VertexId> schedule,
                                           const CertifyParams& params);

/// One certification request in a batch: a schedule, its parameters,
/// and which certifier (Section 6 meta-boundary or Section 5
/// decode-only) to run.
struct CertifyJob {
  std::span<const VertexId> schedule;
  CertifyParams params;
  bool decode_only = false;
};

/// Certifies independent jobs concurrently (PR_THREADS). Every
/// certification walk already owns its stamp arrays and only reads the
/// shared CDAG, so jobs run on the pool with results written to fixed
/// slots — results[i] is bit-identical to running jobs[i] alone.
std::vector<CertifyResult> certify_segments_batch(
    const cdag::CdagView& view, std::span<const CertifyJob> jobs);
std::vector<CertifyResult> certify_segments_batch(
    const cdag::Cdag& cdag, std::span<const CertifyJob> jobs);

}  // namespace pathrouting::bounds
