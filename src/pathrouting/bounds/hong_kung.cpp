#include "pathrouting/bounds/hong_kung.hpp"

#include <algorithm>

#include "pathrouting/support/check.hpp"

namespace pathrouting::bounds {

using cdag::Graph;
using cdag::VertexId;

bool HongKungResult::lemma_holds() const {
  // Atomic-step form of the partition lemma: a segment of io(S) I/Os
  // has dominator <= M + reads(S) <= M + io(S) and minimum set
  // <= M + writes(S) <= M + io(S). With the classical "exactly M I/Os
  // per segment" splitting this is the textbook 2M bound; steps are
  // atomic here so a segment may overshoot M by its final step.
  for (const HongKungSegment& seg : segments) {
    const std::uint64_t limit = cache_size + seg.io;
    if (seg.dominator > limit || seg.minimum > limit) return false;
  }
  return true;
}

std::uint64_t HongKungResult::max_dominator() const {
  std::uint64_t best = 0;
  for (const HongKungSegment& seg : segments) {
    best = std::max(best, seg.dominator);
  }
  return best;
}

std::uint64_t HongKungResult::max_minimum() const {
  std::uint64_t best = 0;
  for (const HongKungSegment& seg : segments) {
    best = std::max(best, seg.minimum);
  }
  return best;
}

HongKungResult hong_kung_partition(const Graph& graph,
                                   std::span<const VertexId> schedule,
                                   std::span<const std::uint32_t> step_io,
                                   std::uint64_t cache_size) {
  PR_REQUIRE(step_io.size() == schedule.size());
  PR_REQUIRE(cache_size >= 1);
  HongKungResult result;
  result.cache_size = cache_size;
  std::vector<std::uint32_t> in_s(graph.num_vertices(), 0);
  std::vector<std::uint32_t> dom_stamp(graph.num_vertices(), 0);
  std::uint32_t seg_id = 1;
  std::uint32_t seg_start = 0;
  std::uint64_t io = 0;
  for (std::uint32_t s = 0; s < schedule.size(); ++s) {
    in_s[schedule[s]] = seg_id;
    io += step_io[s];
    const bool last = s + 1 == schedule.size();
    if (io < cache_size && !last) continue;
    HongKungSegment seg;
    seg.end_step = s + 1;
    seg.io = io;
    // Dominator: R(S) — outside predecessors; every input-to-S path
    // crosses one (inputs are never in S).
    for (std::uint32_t t = seg_start; t <= s; ++t) {
      const VertexId v = schedule[t];
      for (const VertexId p : graph.in(v)) {
        if (in_s[p] != seg_id && dom_stamp[p] != seg_id) {
          dom_stamp[p] = seg_id;
          ++seg.dominator;
        }
      }
      // Minimum set: no successor inside S.
      bool internal_successor = false;
      for (const VertexId q : graph.out(v)) {
        if (in_s[q] == seg_id) {
          internal_successor = true;
          break;
        }
      }
      if (!internal_successor) ++seg.minimum;
    }
    result.segments.push_back(seg);
    seg_start = s + 1;
    io = 0;
    ++seg_id;
  }
  return result;
}

}  // namespace pathrouting::bounds
