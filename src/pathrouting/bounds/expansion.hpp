// Spectral edge-expansion estimation — the machinery of the
// edge-expansion proof [6] that the paper's path-routing technique
// replaces.
//
// [6] derives the I/O bound for Strassen from the edge expansion of the
// decoding graph; that argument needs the decoding graph connected (an
// expander-like lower bound on its conductance). For bases like
// classical (x) strassen the decoding graph is DISCONNECTED, its
// conductance is 0, and the technique yields nothing — which is exactly
// the gap the path-routing proof closes. This module quantifies that:
// the second eigenvalue lambda2 of the lazy random walk on an induced
// subgraph, with Cheeger's inequality conductance >= (1 - lambda2)/2.
// Disconnected graphs give lambda2 = 1 and a zero bound; Strassen's
// D_k keeps lambda2 bounded away from 1.
#pragma once

#include <cstdint>
#include <span>

#include "pathrouting/cdag/graph.hpp"

namespace pathrouting::bounds {

struct ExpansionEstimate {
  int components = 0;      // connected components of the induced subgraph
  double lambda2 = 1.0;    // second eigenvalue of the lazy walk
  /// Cheeger lower bound on the conductance: (1 - lambda2) / 2.
  [[nodiscard]] double cheeger_lower() const {
    return (1.0 - lambda2) / 2.0;
  }
};

/// Estimates the spectral expansion of the subgraph induced by
/// `vertices` (edges taken undirected). lambda2 is computed by
/// deflated power iteration on the lazy random walk; `iterations`
/// trades accuracy for time (the estimate converges from below).
ExpansionEstimate estimate_expansion(const cdag::Graph& graph,
                                     std::span<const cdag::VertexId> vertices,
                                     std::uint64_t seed = 1,
                                     int iterations = 300);

}  // namespace pathrouting::bounds
