// Closed-form I/O and bandwidth lower bounds from the paper (and the
// classical Hong-Kung baseline).
//
// Two flavours are provided for each bound: the *paper-constant* form —
// exactly the expression proved, with its admittedly unoptimised
// constants (footnote 1: "We did not optimize for the constant factor")
// — and the *asymptotic* form (n/sqrt(M))^{omega0} * M used to study
// scaling shape. At practical sizes the paper-constant forms are often
// vacuous (they round to 0); the segment certifier carries the
// mathematical content there.
#pragma once

#include <cstdint>

namespace pathrouting::bounds {

/// Smallest integer k with base^k >= threshold (k >= 0).
int ceil_log(std::uint64_t base, std::uint64_t threshold);

/// Theorem 1, sequential, paper constants:
/// floor( 3 a^k b^{r-k} / (b^2 * 36 M) ) * M with k = ceil(log_a 72M).
/// Returns 0 when k > r-2 (the proof needs at least two recursion
/// levels above the counted subcomputations; see Lemma 1).
std::uint64_t theorem1_io_lower_bound(int a, int b, int r, std::uint64_t m);

/// Section 5, Strassen-specific constants:
/// floor( 4^k 7^{r-k} / 66M ) * M with k = ceil(log_4 132M); 0 if k > r.
std::uint64_t section5_io_lower_bound(int r, std::uint64_t m);

/// omega0 = 2 log_a b for a base with 2a inputs and b products.
double omega0(int a, int b);

/// Asymptotic Theorem-1 form: (n / sqrt(M))^{omega0} * M.
double asymptotic_io(double n, double m, double w0);

/// Hong-Kung classical matmul lower bound (with the constant from [5]):
/// n^3 / (2 sqrt(2) sqrt(M)) - M.
double hong_kung_classical(double n, double m);

/// Cost model of the recursive (DFS) schedule — the upper-bound
/// counterpart of Theorem 1, after [3]. Subproblems with
/// fit_factor * a^k <= M are computed entirely in cache for 3 a^k I/Os
/// (read both operands, write the product); above the cutoff one
/// recursion step streams the encodings and the decoding:
///   F(k) = (e_u + e_v + 2b + e_w + a) * a^{k-1} + b * F(k-1),
/// where e_u, e_v, e_w are the nonzero counts of U, V, W. Evaluates to
/// Theta((n/sqrt(M))^{omega0} * M) — the measured Belady I/O of the
/// DFS schedule tracks this within a small constant (bench_io_scaling).
double dfs_io_model(int a, int b, std::uint64_t e_u, std::uint64_t e_v,
                    std::uint64_t e_w, int r, std::uint64_t m,
                    double fit_factor = 6.0);

/// Theorem 1, parallel: bandwidth >= (n/sqrt(M))^{omega0} * M / P.
double parallel_bandwidth_lb(double n, double m, double p, double w0);

/// Theorem 1, memory-independent: bandwidth >= n^2 / P^{2/omega0}
/// (for per-rank load-balanced computations).
double memory_independent_lb(double n, double p, double w0);

/// Ballard-Demmel-Holtz-Schwartz-Lipshitz strong scaling (PAPERS.md,
/// arXiv:1202.3177): the memory-dependent bound (n/sqrt(M))^{w0} M/P
/// scales perfectly in P only while it dominates the memory-independent
/// n^2/P^{2/w0}; the two cross at
///   P_max = n^{w0} / M^{w0/2},
/// beyond which adding processors cannot reduce per-processor traffic
/// at the bound's rate (the P^{2/w0} falloff; w0 = 3 gives the
/// classical P^{2/3} wall).
double perfect_scaling_pmax(double n, double m, double w0);

/// The combined BDHLS lower bound: max of the memory-dependent and
/// memory-independent bandwidth bounds at (n, M, P).
double strong_scaling_lb(double n, double m, double p, double w0);

}  // namespace pathrouting::bounds
