// The Hong-Kung S-partition machinery ([10] in the paper; STOC'81) —
// the classical predecessor of the path-routing technique, implemented
// as an executable lemma.
//
// Partition lemma: any complete execution that performs q I/Os with a
// cache of size M splits the computation sequence into ceil(q/M)
// consecutive segments of at most M I/Os each, and every segment S then
// has
//   * a DOMINATOR set of size <= 2M — every path from an input to a
//     vertex of S passes through it (at most M values cached when the
//     segment starts, at most M read during it), and
//   * a MINIMUM set of size <= 2M — the vertices of S with no
//     successor inside S (at most M still cached at the end, at most M
//     written during the segment).
// Consequently IO >= M * (H(2M) - 1) where H(2M) is the minimum number
// of parts of any 2M-partition of the CDAG.
//
// `hong_kung_partition` re-segments a *real* pebble-game execution by
// its recorded per-step I/O and computes, for each segment, the
// canonical dominator R(S) (outside predecessors — every input-to-S
// path crosses one) and the minimum set exactly; the test suite and
// benches confirm both are <= 2M on every segment of every schedule,
// for the fast CDAGs and the classical one alike.
#pragma once

#include <span>
#include <vector>

#include "pathrouting/cdag/graph.hpp"

namespace pathrouting::bounds {

struct HongKungSegment {
  std::uint32_t end_step = 0;  // exclusive
  std::uint64_t io = 0;        // I/Os issued during the segment
  std::uint64_t dominator = 0; // |R(S)|, a valid dominator of S
  std::uint64_t minimum = 0;   // |{v in S : no successor in S}|
};

struct HongKungResult {
  std::uint64_t cache_size = 0;
  std::vector<HongKungSegment> segments;
  /// The partition lemma's conclusion: every segment's dominator and
  /// minimum set have at most 2M vertices.
  [[nodiscard]] bool lemma_holds() const;
  /// Largest dominator / minimum set observed.
  [[nodiscard]] std::uint64_t max_dominator() const;
  [[nodiscard]] std::uint64_t max_minimum() const;
};

/// Re-segments an execution (schedule + the per-step I/O counts
/// recorded by pebble::simulate with record_step_io) into maximal
/// segments of at most `cache_size` I/Os and computes the Hong-Kung
/// quantities for each.
HongKungResult hong_kung_partition(const cdag::Graph& graph,
                                   std::span<const cdag::VertexId> schedule,
                                   std::span<const std::uint32_t> step_io,
                                   std::uint64_t cache_size);

}  // namespace pathrouting::bounds
