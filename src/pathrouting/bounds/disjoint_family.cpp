#include "pathrouting/bounds/disjoint_family.hpp"

#include <unordered_set>

#include "pathrouting/bilinear/analysis.hpp"

namespace pathrouting::bounds {

DisjointFamily build_disjoint_family(const Cdag& cdag, int k) {
  const cdag::Layout& layout = cdag.layout();
  PR_REQUIRE(k >= 0 && k <= layout.r() - 2);
  PR_REQUIRE_MSG(bilinear::lemma1_precondition(cdag.algorithm()),
                 "Lemma 1 precondition fails: one encoding is all copies");
  DisjointFamily family;
  family.k = k;
  family.guaranteed = layout.pow_b()(layout.r() - k - 2);
  const std::uint64_t num_subs = layout.pow_b()(layout.r() - k);
  std::unordered_set<cdag::VertexId> used_roots;
  used_roots.reserve(1 << 20);
  std::vector<cdag::VertexId> roots;
  for (std::uint64_t i = 0; i < num_subs; ++i) {
    const cdag::SubComputation sub(cdag, k, i);
    roots = sub.input_meta_roots();
    bool clash = false;
    for (const cdag::VertexId root : roots) {
      if (used_roots.contains(root)) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    used_roots.insert(roots.begin(), roots.end());
    family.prefixes.push_back(i);
  }
  return family;
}

}  // namespace pathrouting::bounds
