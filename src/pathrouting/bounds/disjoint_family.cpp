#include "pathrouting/bounds/disjoint_family.hpp"

#include <unordered_set>

#include "pathrouting/bilinear/analysis.hpp"

namespace pathrouting::bounds {

DisjointFamily build_disjoint_family(const cdag::CdagView& view, int k) {
  const cdag::Layout& layout = view.layout();
  PR_REQUIRE(k >= 0 && k <= layout.r() - 2);
  PR_REQUIRE_MSG(bilinear::lemma1_precondition(view.algorithm()),
                 "Lemma 1 precondition fails: one encoding is all copies");
  DisjointFamily family;
  family.k = k;
  family.guaranteed = layout.pow_b()(layout.r() - k - 2);
  const std::uint64_t num_subs = layout.pow_b()(layout.r() - k);
  const int in_rank = layout.r() - k;
  const std::uint64_t inputs_per_side = layout.pow_a()(k);
  std::unordered_set<cdag::VertexId> used_roots;
  used_roots.reserve(1 << 20);
  std::vector<cdag::VertexId> roots;
  for (std::uint64_t i = 0; i < num_subs; ++i) {
    // SubComputation::input_meta_roots, addressed through the view: the
    // copy's inputs are enc(side, r-k, prefix, p), A side then B.
    roots.clear();
    for (const cdag::Side side : {cdag::Side::A, cdag::Side::B}) {
      for (std::uint64_t p = 0; p < inputs_per_side; ++p) {
        roots.push_back(view.meta_root(layout.enc(side, in_rank, i, p)));
      }
    }
    bool clash = false;
    for (const cdag::VertexId root : roots) {
      if (used_roots.contains(root)) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    used_roots.insert(roots.begin(), roots.end());
    family.prefixes.push_back(i);
  }
  return family;
}

DisjointFamily build_disjoint_family(const Cdag& cdag, int k) {
  return build_disjoint_family(cdag::ExplicitView(cdag), k);
}

}  // namespace pathrouting::bounds
