// Lemma 1: a family of mutually input-disjoint subcomputations G_k^i
// covering at least a 1/b^2 fraction of all b^{r-k} subcomputations.
//
// The paper's proof is existential (pick a grandchild per grandparent);
// here the family is built greedily over meta-vertex roots of inputs,
// which is simpler, verifiable, and in practice keeps far more than the
// guaranteed fraction.
#pragma once

#include <vector>

#include "pathrouting/cdag/subcomputation.hpp"
#include "pathrouting/cdag/view.hpp"

namespace pathrouting::bounds {

using cdag::Cdag;

struct DisjointFamily {
  int k = 0;
  /// Prefixes i of the kept subcomputations G_k^i, increasing.
  std::vector<std::uint64_t> prefixes;
  /// b^{r-k-2}: Lemma 1's guaranteed family size.
  std::uint64_t guaranteed = 0;
  [[nodiscard]] bool meets_lemma1() const {
    return prefixes.size() >= guaranteed;
  }
};

/// Greedy maximal family of mutually input-disjoint G_k^i (first-fit in
/// prefix order). Requires 0 <= k <= r-2 (Lemma 1's hypothesis) and the
/// Lemma 1 precondition on the base algorithm. The view form only needs
/// meta_root on the copies' input addresses, so it runs on implicit
/// graphs too; the Cdag form wraps it and is bit-identical.
DisjointFamily build_disjoint_family(const cdag::CdagView& view, int k);
DisjointFamily build_disjoint_family(const Cdag& cdag, int k);

}  // namespace pathrouting::bounds
