#include "pathrouting/search/sweep.hpp"

#include <algorithm>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/search/local_search.hpp"
#include "pathrouting/support/digest.hpp"

namespace pathrouting::search {

std::uint64_t graph_digest(const cdag::Graph& graph) {
  std::vector<std::uint64_t> words;
  words.reserve(static_cast<std::size_t>(graph.num_vertices()) * 3);
  words.push_back(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    words.push_back(graph.in_degree(v));
    for (const VertexId p : graph.in(v)) words.push_back(p);
  }
  return support::fnv1a_words(words);
}

SweepPoint run_search_point(const SweepSpec& spec) {
  const bilinear::BilinearAlgorithm alg = bilinear::by_name(spec.algorithm);
  const cdag::Cdag cdag(alg, spec.r, {.with_coefficients = false});
  const cdag::Graph& graph = cdag.graph();
  const cdag::Layout& layout = cdag.layout();

  SweepPoint point;
  point.spec = spec;
  point.num_vertices = graph.num_vertices();
  point.output_mask.assign(graph.num_vertices(), 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    point.output_mask[v] = layout.is_output(v) ? 1 : 0;
  }
  const auto is_output = [&](VertexId v) { return point.output_mask[v] != 0; };

  const std::vector<VertexId> dfs = schedule::dfs_schedule(cdag);
  const std::vector<VertexId> bfs = schedule::bfs_schedule(cdag);
  point.scheduled_vertices = dfs.size();
  const pebble::PebbleOptions pebble_opts{.cache_size = spec.m};
  point.dfs_io = pebble::simulate(graph, dfs, pebble_opts, is_output).io();
  point.bfs_io = pebble::simulate(graph, bfs, pebble_opts, is_output).io();

  const LocalSearchResult local = improve_schedule(
      graph, dfs,
      {.cache_size = spec.m,
       .seed = spec.seed,
       .max_rounds = spec.ls_rounds,
       .moves_per_round = spec.ls_moves},
      is_output);
  point.local_io = local.io;
  point.moves_accepted = local.moves_accepted;

  SearchOptions options;
  options.cache_size = spec.m;
  options.node_budget = spec.node_budget;
  // The paper's schedule-independent closed form (Section 6 segment
  // inequality; vacuous below its r floor, in which case the
  // partial-state root bound carries the certificate alone).
  options.extra_lower_bound =
      bounds::theorem1_io_lower_bound(alg.a(), alg.b(), spec.r, spec.m);
  options.initial_incumbent = local.schedule;
  const SearchResult searched = branch_and_bound(graph, options, is_output);

  point.searched_io = searched.best_io;
  point.lower_bound = searched.lower_bound;
  point.certified = searched.certified;
  point.proof = searched.proof;
  point.nodes_expanded = searched.nodes_expanded;
  point.nodes_pruned = searched.nodes_pruned;
  point.leaves_scored = searched.leaves_scored;
  point.witness = searched.best_schedule;

  const pebble::PebbleResult best_sim =
      pebble::simulate(graph, point.witness, pebble_opts, is_output);
  point.searched_reads = best_sim.reads;
  point.searched_writes = best_sim.writes;

  point.graph_fnv = graph_digest(graph);
  std::vector<std::uint64_t> witness_words(point.witness.begin(),
                                           point.witness.end());
  point.witness_fnv = support::fnv1a_words(witness_words);
  return point;
}

void fill_search_record(const SweepPoint& point, obs::BenchRecord& rec) {
  const SweepSpec& spec = point.spec;
  rec.set("experiment", "schedule_search")
      .set("engine", "search")
      .set("algorithm", spec.algorithm)
      .set("k", spec.r)
      .set("m", spec.m)
      .set("budget", spec.node_budget)
      .set("seed", spec.seed)
      .set("ls_rounds", spec.ls_rounds)
      .set("ls_moves", spec.ls_moves)
      .set("vertices", point.num_vertices)
      .set("scheduled", point.scheduled_vertices)
      .set("dfs_io", point.dfs_io)
      .set("bfs_io", point.bfs_io)
      .set("local_io", point.local_io)
      .set("searched_io", point.searched_io)
      .set("searched_reads", point.searched_reads)
      .set("searched_writes", point.searched_writes)
      .set("lower_bound", point.lower_bound)
      .set("certified", point.certified)
      .set("proof", proof_name(point.proof))
      .set("nodes_expanded", point.nodes_expanded)
      .set("nodes_pruned", point.nodes_pruned)
      .set("leaves_scored", point.leaves_scored)
      .set("moves_accepted", point.moves_accepted)
      .set("graph_fnv", point.graph_fnv)
      .set("witness_fnv", point.witness_fnv)
      .set("ratio_vs_lb",
           point.lower_bound > 0 ? static_cast<double>(point.searched_io) /
                                       static_cast<double>(point.lower_bound)
                                 : 0.0);
}

SweepSpec search_spec_from_record(const obs::BenchRecord& rec) {
  SweepSpec spec;
  spec.algorithm = rec.text_or("algorithm", "");
  spec.r = static_cast<int>(rec.int_or("k", 1));
  spec.m = static_cast<std::uint64_t>(rec.int_or("m", 0));
  spec.node_budget = static_cast<std::uint64_t>(rec.int_or("budget", 0));
  spec.seed = static_cast<std::uint64_t>(rec.int_or("seed", 1));
  spec.ls_rounds = static_cast<std::uint64_t>(rec.int_or("ls_rounds", 16));
  spec.ls_moves = static_cast<std::uint64_t>(rec.int_or("ls_moves", 64));
  return spec;
}

}  // namespace pathrouting::search
