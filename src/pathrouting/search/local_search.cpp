#include "pathrouting/search/local_search.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "pathrouting/obs/obs.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/support/check.hpp"
#include "pathrouting/support/parallel.hpp"
#include "pathrouting/support/prng.hpp"

namespace pathrouting::search {

namespace {

/// Dependence check over a permutation of a known-complete schedule:
/// every non-input predecessor must appear strictly earlier. `pos` is
/// scratch of size num_vertices (contents overwritten).
bool is_topological(const Graph& graph, std::span<const VertexId> order,
                    std::vector<std::uint32_t>& pos) {
  constexpr std::uint32_t kUnset = UINT32_MAX;
  pos.assign(graph.num_vertices(), kUnset);
  for (std::uint32_t s = 0; s < order.size(); ++s) pos[order[s]] = s;
  for (std::uint32_t s = 0; s < order.size(); ++s) {
    for (const VertexId p : graph.in(order[s])) {
      if (graph.in_degree(p) == 0) continue;
      if (pos[p] == kUnset || pos[p] >= s) return false;
    }
  }
  return true;
}

/// One seeded perturbation of `current`; returns an empty vector when
/// the sampled move is a no-op or breaks a dependence.
std::vector<VertexId> perturb(const Graph& graph,
                              const std::vector<VertexId>& current,
                              support::Xoshiro256& rng,
                              std::vector<std::uint32_t>& pos_scratch) {
  const std::uint64_t len = current.size();
  std::vector<VertexId> candidate;
  if (len < 2) return candidate;
  if (rng.below(2) == 0) {
    // Adjacent transposition: valid iff no edge order[i] -> order[i+1].
    const std::uint64_t i = rng.below(len - 1);
    if (graph.has_edge(current[i], current[i + 1])) return candidate;
    candidate = current;
    std::swap(candidate[i], candidate[i + 1]);
    return candidate;
  }
  // Block move: lift order[i, i+block) and reinsert at j.
  const std::uint64_t block = 1 + rng.below(std::min<std::uint64_t>(4, len));
  if (block >= len) return candidate;
  const std::uint64_t i = rng.below(len - block + 1);
  const std::uint64_t j = rng.below(len - block + 1);
  if (i == j) return candidate;
  candidate = current;
  const auto first = candidate.begin() + static_cast<std::ptrdiff_t>(i);
  const auto last = first + static_cast<std::ptrdiff_t>(block);
  if (j < i) {
    std::rotate(candidate.begin() + static_cast<std::ptrdiff_t>(j), first,
                last);
  } else {
    std::rotate(first, last,
                candidate.begin() + static_cast<std::ptrdiff_t>(j + block));
  }
  if (!is_topological(graph, candidate, pos_scratch)) candidate.clear();
  return candidate;
}

}  // namespace

LocalSearchResult improve_schedule(
    const Graph& graph, std::span<const VertexId> initial,
    const LocalSearchOptions& options,
    const std::function<bool(VertexId)>& is_output) {
  obs::TraceSpan span("search.local_search");
  static obs::Counter moves_counter("search.moves_evaluated");
  PR_REQUIRE_MSG(!initial.empty(), "local search needs a non-empty schedule");

  const auto score = [&](std::span<const VertexId> order) {
    return pebble::simulate(graph, order, {.cache_size = options.cache_size},
                            is_output)
        .io();
  };

  LocalSearchResult result;
  result.schedule.assign(initial.begin(), initial.end());
  result.initial_io = score(result.schedule);
  result.io = result.initial_io;

  support::Xoshiro256 rng(options.seed);
  std::vector<std::uint32_t> pos_scratch;
  for (std::uint64_t round = 0; round < options.max_rounds; ++round) {
    ++result.rounds_run;
    // Candidates are generated serially from the seed: the batch is a
    // pure function of (options.seed, accepted history).
    std::vector<std::vector<VertexId>> candidates;
    candidates.reserve(options.moves_per_round);
    for (std::uint64_t t = 0; t < options.moves_per_round; ++t) {
      std::vector<VertexId> candidate =
          perturb(graph, result.schedule, rng, pos_scratch);
      if (!candidate.empty()) candidates.push_back(std::move(candidate));
    }
    result.moves_evaluated += candidates.size();
    moves_counter.add(candidates.size());
    if (candidates.empty()) break;

    // Chunk-ordered (cost, index) argmin: bit-identical at any
    // PR_THREADS (see support/parallel.hpp).
    using Best = std::pair<std::uint64_t, std::uint64_t>;  // (io, index)
    constexpr Best kNoBest{std::numeric_limits<std::uint64_t>::max(),
                           std::numeric_limits<std::uint64_t>::max()};
    const std::uint64_t grain = support::parallel::work_grain(
        candidates.size(), 64 * initial.size());
    const Best best = support::parallel::parallel_reduce<Best>(
        0, candidates.size(), grain, kNoBest,
        [&](std::uint64_t lo, std::uint64_t hi) {
          Best local = kNoBest;
          for (std::uint64_t c = lo; c < hi; ++c) {
            local = std::min(local, Best{score(candidates[c]), c});
          }
          return local;
        },
        [](Best& acc, const Best& chunk) { acc = std::min(acc, chunk); });

    if (best.first >= result.io) break;  // round without improvement
    result.io = best.first;
    result.schedule = std::move(candidates[best.second]);
    ++result.moves_accepted;
  }
  return result;
}

}  // namespace pathrouting::search
