// One (algorithm, r, M) point of the schedule-search experiment (E20),
// shared by bench_schedule_search and pr_bench_gate — the same code
// path produces the committed baseline and re-derives it in CI, so a
// count diff is a behavioural change, never a harness skew.
//
// A point runs the whole pipeline on the catalog CDAG G_r:
// DFS and BFS baselines through pebble::simulate (Belady), the seeded
// local search from the DFS order, then branch-and-bound seeded with
// the local-search incumbent under the deterministic node budget. The
// root lower bound max-combines the partial-state bound at the empty
// prefix (bounds/schedule_bound.hpp) with the paper's Theorem-1 closed
// form — both schedule-independent, so a cost that meets the bound is
// a certified-optimal pebbling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pathrouting/cdag/graph.hpp"
#include "pathrouting/obs/bench_record.hpp"
#include "pathrouting/search/optimizer.hpp"

namespace pathrouting::search {

struct SweepSpec {
  std::string algorithm;  // catalog name (bilinear::by_name)
  int r = 1;
  std::uint64_t m = 0;            // cache size M, in values
  std::uint64_t node_budget = 0;  // branch-and-bound expansions
  std::uint64_t seed = 1;         // local-search seed
  std::uint64_t ls_rounds = 16;
  std::uint64_t ls_moves = 64;
};

struct SweepPoint {
  SweepSpec spec;
  std::uint64_t num_vertices = 0;
  std::uint64_t scheduled_vertices = 0;  // non-input vertices
  // Exact u64 counters — the determinism contract pr_bench_gate
  // re-derives bit for bit.
  std::uint64_t dfs_io = 0;
  std::uint64_t bfs_io = 0;
  std::uint64_t local_io = 0;
  std::uint64_t searched_io = 0;
  std::uint64_t searched_reads = 0;
  std::uint64_t searched_writes = 0;
  std::uint64_t lower_bound = 0;
  bool certified = false;
  Proof proof = Proof::kNone;
  std::uint64_t nodes_expanded = 0;
  std::uint64_t nodes_pruned = 0;
  std::uint64_t leaves_scored = 0;
  std::uint64_t moves_accepted = 0;
  std::uint64_t graph_fnv = 0;    // canonical CSR digest of G_r
  std::uint64_t witness_fnv = 0;  // digest of the witness schedule
  std::vector<VertexId> witness;
  std::vector<std::uint8_t> output_mask;  // size num_vertices
};

/// Runs one point (builds its own Cdag).
SweepPoint run_search_point(const SweepSpec& spec);

/// Canonical FNV-1a digest of a graph's in-CSR (vertex count, then per
/// vertex its in-degree and predecessor list) — the graph identity the
/// golden corpus and certificates pin.
std::uint64_t graph_digest(const cdag::Graph& graph);

/// Serializes a point onto the unified bench-record schema (experiment
/// "schedule_search"); spec fields are stored so the gate can re-derive
/// the point from the committed baseline alone.
void fill_search_record(const SweepPoint& point, obs::BenchRecord& rec);

/// Rebuilds the spec from a baseline record written by
/// fill_search_record.
SweepSpec search_spec_from_record(const obs::BenchRecord& rec);

}  // namespace pathrouting::search
