#include "pathrouting/search/optimizer.hpp"

#include <algorithm>
#include <limits>

#include "pathrouting/bounds/schedule_bound.hpp"
#include "pathrouting/obs/obs.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/support/check.hpp"

namespace pathrouting::search {

namespace {

constexpr std::uint64_t kInfinity = std::numeric_limits<std::uint64_t>::max();

/// The serial DFS walk over partial topological orders. Ready vertices
/// expand in ascending id, so the walk — and with it every counter and
/// the witness — is deterministic.
struct TreeWalk {
  const Graph& graph;
  const SearchOptions& options;
  const std::function<bool(VertexId)>& is_output;
  std::uint64_t num_to_schedule = 0;

  std::vector<VertexId> prefix;
  std::vector<std::uint32_t> missing_preds;  // unscheduled non-input preds
  std::vector<std::uint8_t> ready;

  SearchResult result;
  bool stop = false;  // optimum proven or budget exhausted

  TreeWalk(const Graph& g, const SearchOptions& opt,
           const std::function<bool(VertexId)>& out)
      : graph(g), options(opt), is_output(out) {
    const VertexId n = graph.num_vertices();
    missing_preds.assign(n, 0);
    ready.assign(n, 0);
    for (VertexId v = 0; v < n; ++v) {
      if (graph.in_degree(v) == 0) continue;  // input
      ++num_to_schedule;
      for (const VertexId p : graph.in(v)) {
        if (graph.in_degree(p) > 0) ++missing_preds[v];
      }
      ready[v] = missing_preds[v] == 0;
    }
    prefix.reserve(num_to_schedule);
  }

  void score_leaf() {
    static obs::Counter leaves("search.leaves_scored");
    leaves.add();
    ++result.leaves_scored;
    const pebble::PebbleResult sim = pebble::simulate(
        graph, prefix, {.cache_size = options.cache_size}, is_output);
    if (sim.io() < result.best_io) {
      result.best_io = sim.io();
      result.best_schedule = prefix;
      if (result.best_io == result.lower_bound) stop = true;
    }
  }

  void push(VertexId v) {
    prefix.push_back(v);
    ready[v] = 0;
    for (const VertexId c : graph.out(v)) {
      if (--missing_preds[c] == 0) ready[c] = 1;
    }
  }

  void pop(VertexId v) {
    prefix.pop_back();
    for (const VertexId c : graph.out(v)) {
      if (missing_preds[c]++ == 0) ready[c] = 0;
    }
    ready[v] = 1;
  }

  void expand() {
    if (stop) return;
    if (prefix.size() == num_to_schedule) {
      score_leaf();
      return;
    }
    static obs::Counter pruned("search.nodes_pruned");
    static obs::Counter expanded("search.nodes_expanded");
    if (result.best_io != kInfinity) {
      const bounds::PartialBound pb = bounds::partial_schedule_lower_bound(
          graph, prefix, options.cache_size, is_output);
      const std::uint64_t bound =
          std::max(pb.total(), options.extra_lower_bound) +
          options.debug_bound_inflation;
      if (bound >= result.best_io) {
        pruned.add();
        ++result.nodes_pruned;
        return;
      }
    }
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (!ready[v]) continue;
      if (stop) return;
      if (options.node_budget != 0 &&
          result.nodes_expanded >= options.node_budget) {
        result.budget_exhausted = true;
        stop = true;
        return;
      }
      expanded.add();
      ++result.nodes_expanded;
      push(v);
      expand();
      pop(v);
    }
  }
};

}  // namespace

const char* proof_name(Proof proof) {
  switch (proof) {
    case Proof::kBoundMet:
      return "bound-met";
    case Proof::kExhausted:
      return "exhausted";
    case Proof::kNone:
      break;
  }
  return "none";
}

SearchResult branch_and_bound(const Graph& graph,
                              const SearchOptions& options,
                              const std::function<bool(VertexId)>& is_output) {
  obs::TraceSpan span("search.branch_and_bound");
  TreeWalk walk(graph, options, is_output);
  PR_REQUIRE_MSG(walk.num_to_schedule > 0, "graph has no non-input vertices");

  const bounds::PartialBound root = bounds::partial_schedule_lower_bound(
      graph, {}, options.cache_size, is_output);
  walk.result.lower_bound =
      std::max(root.total(), options.extra_lower_bound);
  walk.result.best_io = kInfinity;

  if (!options.initial_incumbent.empty()) {
    walk.prefix = options.initial_incumbent;
    walk.score_leaf();
    walk.prefix.clear();
  }
  walk.expand();

  SearchResult result = std::move(walk.result);
  if (result.best_io == result.lower_bound) {
    result.certified = true;
    result.proof = Proof::kBoundMet;
  } else if (!result.budget_exhausted && result.best_io != kInfinity) {
    result.certified = true;
    result.proof = Proof::kExhausted;
  }
  return result;
}

}  // namespace pathrouting::search
