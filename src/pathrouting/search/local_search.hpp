// Lin-Kernighan-style local search over pebbling schedules — the
// improvement mode for graphs too big for branch-and-bound to close.
//
// Perturbations preserve topological validity by construction and are
// re-checked against the dependence edges before scoring:
//  * adjacent transposition: swap order[i], order[i+1] when there is
//    no edge between them;
//  * block move: lift a short contiguous block and reinsert it at
//    another position, kept only if every dependence still points
//    forward.
// Each round generates a seeded batch of candidates, scores them all
// with Belady through pebble::simulate, and accepts the best strictly
// improving one; the search stops at the first round with no
// improvement (or after max_rounds). Accepted moves therefore never
// increase the Belady cost — the invariant tests/test_search.cpp pins.
//
// Determinism: candidates are generated serially from the seed
// (support::Xoshiro256) and scored on the deterministic parallel
// substrate with a chunk-ordered (cost, index) argmin fold, so the
// result is bit-identical at any PR_THREADS.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pathrouting/cdag/graph.hpp"

namespace pathrouting::search {

using cdag::Graph;
using cdag::VertexId;

struct LocalSearchOptions {
  std::uint64_t cache_size = 0;  // M, in values
  std::uint64_t seed = 1;
  std::uint64_t max_rounds = 32;
  /// Candidate perturbations attempted per round (invalid ones are
  /// discarded before scoring).
  std::uint64_t moves_per_round = 128;
};

struct LocalSearchResult {
  std::vector<VertexId> schedule;
  std::uint64_t io = 0;          // Belady I/O of `schedule`
  std::uint64_t initial_io = 0;  // Belady I/O of the seed schedule
  std::uint64_t rounds_run = 0;
  std::uint64_t moves_evaluated = 0;
  std::uint64_t moves_accepted = 0;
};

/// Improves `initial` (a valid topological order of the non-input
/// vertices) under Belady eviction with cache size
/// options.cache_size. The result's schedule is always a valid
/// topological order with io <= initial_io.
LocalSearchResult improve_schedule(
    const Graph& graph, std::span<const VertexId> initial,
    const LocalSearchOptions& options,
    const std::function<bool(VertexId)>& is_output);

}  // namespace pathrouting::search
