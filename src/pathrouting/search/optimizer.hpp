// Schedule-space search: branch-and-bound over red-blue pebblings.
//
// I/O-complexity is a minimum over all topological orders; the repo's
// fixed schedule family (DFS/BFS/random) only upper-bounds it. This
// optimizer explores the space of completions of partial topological
// orders, pruning with the admissible partial-state bound of
// bounds/schedule_bound.hpp (never an overestimate of the best
// completion, so no optimum is ever cut) and scoring every leaf
// exactly through pebble::simulate with Belady eviction.
//
// Certification: a result is *certified optimal* when either
//  * the incumbent's cost equals the root lower bound (kBoundMet) —
//    no schedule can beat an admissible bound — or
//  * the tree was exhausted within the node budget (kExhausted) —
//    every completion was either scored or pruned by a bound that
//    cannot cut the optimum.
// The search.certified-optimal audit rule re-simulates the witness and
// re-derives the bound independently before a certificate is trusted.
//
// Determinism: the tree walk is serial and children expand in
// ascending vertex id, so nodes_expanded / nodes_pruned / the witness
// are pure functions of (graph, M, options) at any PR_THREADS. The
// parallel substrate is used by the local-search mode
// (search/local_search.hpp), not the tree walk.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pathrouting/cdag/graph.hpp"

namespace pathrouting::search {

using cdag::Graph;
using cdag::VertexId;

struct SearchOptions {
  std::uint64_t cache_size = 0;  // M, in values
  /// Maximum tree-edge expansions; 0 = unbounded (full exhaustion).
  std::uint64_t node_budget = 0;
  /// Additional schedule-independent lower bound (e.g. the paper's
  /// Theorem-1 closed form) max-combined into the root bound and every
  /// pruning bound.
  std::uint64_t extra_lower_bound = 0;
  /// Seed schedule scored before the walk — a good incumbent makes
  /// pruning bite from the first node. Empty = start from infinity.
  std::vector<VertexId> initial_incumbent;
  /// TEST-ONLY: inflates every pruning bound by this amount. An
  /// inflated bound is no longer admissible; the mutation test in
  /// tests/test_search.cpp uses this to prove that an over-promising
  /// bound makes the search miss optima (i.e. that admissibility is
  /// load-bearing, not decorative).
  std::uint64_t debug_bound_inflation = 0;
};

enum class Proof { kNone, kBoundMet, kExhausted };
const char* proof_name(Proof proof);

struct SearchResult {
  std::uint64_t best_io = 0;
  std::vector<VertexId> best_schedule;  // the witness
  /// Root lower bound: max(partial_schedule_lower_bound(empty prefix),
  /// options.extra_lower_bound).
  std::uint64_t lower_bound = 0;
  bool certified = false;
  Proof proof = Proof::kNone;
  std::uint64_t nodes_expanded = 0;
  std::uint64_t nodes_pruned = 0;
  std::uint64_t leaves_scored = 0;
  bool budget_exhausted = false;
};

/// Minimizes Belady-simulated I/O over topological orders of the
/// non-input vertices of `graph`. Requires cache_size >= max
/// in-degree + 1 (the simulator's feasibility floor) and at least one
/// non-input vertex.
SearchResult branch_and_bound(const Graph& graph,
                              const SearchOptions& options,
                              const std::function<bool(VertexId)>& is_output);

}  // namespace pathrouting::search
