#include "pathrouting/parallel/summa.hpp"

#include <cmath>

#include "pathrouting/matmul/classical.hpp"

namespace pathrouting::parallel {

namespace {

using matmul::Matrix;

/// Owner (i,j) blocks held by each processor, row-major over the grid.
struct Blocks {
  std::vector<Matrix<std::int64_t>> block;  // [i * grid + j]
};

Blocks scatter(const Matrix<std::int64_t>& m, int grid) {
  const std::size_t nb = m.rows() / static_cast<std::size_t>(grid);
  Blocks out;
  out.block.reserve(static_cast<std::size_t>(grid) * grid);
  for (int i = 0; i < grid; ++i) {
    for (int j = 0; j < grid; ++j) {
      Matrix<std::int64_t> blk(nb, nb);
      for (std::size_t r = 0; r < nb; ++r) {
        for (std::size_t c = 0; c < nb; ++c) {
          blk(r, c) = m(static_cast<std::size_t>(i) * nb + r,
                        static_cast<std::size_t>(j) * nb + c);
        }
      }
      out.block.push_back(std::move(blk));
    }
  }
  return out;
}

}  // namespace

SummaResult run_summa(const Matrix<std::int64_t>& a,
                      const Matrix<std::int64_t>& b, int grid,
                      std::size_t panel, Machine& machine) {
  PR_REQUIRE(grid >= 1);
  PR_REQUIRE(machine.procs() == static_cast<std::uint64_t>(grid) *
                                    static_cast<std::uint64_t>(grid));
  const std::size_t n = a.rows();
  PR_REQUIRE(a.cols() == n && b.rows() == n && b.cols() == n);
  PR_REQUIRE(n % static_cast<std::size_t>(grid) == 0);
  const std::size_t nb = n / static_cast<std::size_t>(grid);
  PR_REQUIRE(panel >= 1 && panel <= nb);

  const Blocks ab = scatter(a, grid);
  const Blocks bb = scatter(b, grid);
  std::vector<Matrix<std::int64_t>> c_local(
      static_cast<std::size_t>(grid) * grid, Matrix<std::int64_t>(nb, nb));
  const auto proc = [&](int i, int j) { return i * grid + j; };

  // March over the global k dimension in panels. The processor column
  // (resp. row) owning the panel ring-broadcasts its slice along each
  // processor row (resp. column); every hop is a recorded message.
  for (std::size_t k0 = 0; k0 < n; k0 += panel) {
    const std::size_t width = std::min(panel, n - k0);
    const int k_owner = static_cast<int>(k0 / nb);
    const std::size_t k_local = k0 % nb;  // panels never straddle blocks
    PR_ASSERT(k_local + width <= nb);
    // A-panel: rows of the grid; B-panel: columns of the grid.
    for (int i = 0; i < grid; ++i) {
      for (int hop = 1; hop < grid; ++hop) {
        const int from = (k_owner + hop - 1) % grid;
        const int to = (k_owner + hop) % grid;
        machine.send(proc(i, from), proc(i, to), nb * width);  // A slice
        machine.send(proc(from, i), proc(to, i), nb * width);  // B slice
      }
    }
    machine.end_superstep();
    // Local rank-`width` update: C(i,j) += A(i,k_owner)[:,panel] *
    // B(k_owner,j)[panel,:] on every processor (data is value-real; the
    // "received" slices are read from the owner's block).
    for (int i = 0; i < grid; ++i) {
      for (int j = 0; j < grid; ++j) {
        const Matrix<std::int64_t>& a_blk =
            ab.block[static_cast<std::size_t>(proc(i, k_owner))];
        const Matrix<std::int64_t>& b_blk =
            bb.block[static_cast<std::size_t>(proc(k_owner, j))];
        Matrix<std::int64_t>& c_blk =
            c_local[static_cast<std::size_t>(proc(i, j))];
        for (std::size_t r = 0; r < nb; ++r) {
          for (std::size_t kk = 0; kk < width; ++kk) {
            const std::int64_t av = a_blk(r, k_local + kk);
            for (std::size_t cc = 0; cc < nb; ++cc) {
              c_blk(r, cc) += av * b_blk(k_local + kk, cc);
            }
          }
        }
      }
    }
  }

  // Assemble and verify.
  Matrix<std::int64_t> c(n, n);
  for (int i = 0; i < grid; ++i) {
    for (int j = 0; j < grid; ++j) {
      const Matrix<std::int64_t>& blk =
          c_local[static_cast<std::size_t>(proc(i, j))];
      for (std::size_t r = 0; r < nb; ++r) {
        for (std::size_t cc = 0; cc < nb; ++cc) {
          c(static_cast<std::size_t>(i) * nb + r,
            static_cast<std::size_t>(j) * nb + cc) = blk(r, cc);
        }
      }
    }
  }
  SummaResult result;
  result.bandwidth_cost = machine.bandwidth_cost();
  result.total_words = machine.total_words();
  result.supersteps = machine.supersteps();
  result.correct = c == matmul::naive_multiply(a, b);
  return result;
}

SummaResult simulate_summa(std::size_t n, std::uint64_t grid,
                           std::size_t panel, Machine& machine) {
  PR_REQUIRE(grid >= 1);
  PR_REQUIRE(machine.procs() == checked_mul(grid, grid));
  PR_REQUIRE(n % grid == 0);
  const std::size_t nb = n / grid;
  PR_REQUIRE(panel >= 1 && panel <= nb);

  // One superstep per panel. Relative to the panel-owner row/column,
  // a ring position is the head (position 0: sends its slice, receives
  // nothing), a middle hop (positions 1..g-2: receives one slice,
  // forwards one), or the tail (position g-1: receives only). Each
  // processor sits on two independent rings — the A-ring through its
  // row position and the B-ring through its column position — so its
  // profile is the sum of two ring profiles, and the grid partitions
  // into at most 3 x 3 = 9 classes of identical (sent, received)
  // pairs. run_summa's scalar sends realise exactly these profiles.
  const std::uint64_t sends_at[3] = {1, 1, 0};     // head, mid, tail
  const std::uint64_t receives_at[3] = {0, 1, 1};  // head, mid, tail
  const std::uint64_t counts[3] = {1, grid - 1 > 0 ? grid - 2 : 0,
                                   grid - 1 > 0 ? 1u : 0u};
  for (std::size_t k0 = 0; k0 < n; k0 += panel) {
    const std::size_t width = std::min(panel, n - k0);
    const std::uint64_t slice = checked_mul(nb, width);
    if (grid >= 2) {  // a 1 x 1 grid has no ring hops at all
      for (int ci = 0; ci < 3; ++ci) {
        for (int cj = 0; cj < 3; ++cj) {
          const std::uint64_t members = checked_mul(counts[ci], counts[cj]);
          if (members == 0) continue;
          machine.send_class(
              members, checked_mul(slice, sends_at[ci] + sends_at[cj]),
              checked_mul(slice, receives_at[ci] + receives_at[cj]));
        }
      }
    }
    machine.end_superstep();
  }

  SummaResult result;
  result.bandwidth_cost = machine.bandwidth_cost();
  result.total_words = machine.total_words();
  result.supersteps = machine.supersteps();
  result.correct = true;  // accounting-level: no data to get wrong
  return result;
}

Cost25D simulate_25d(double n, double p, double c) {
  PR_REQUIRE(c >= 1 && p >= c);
  Cost25D cost;
  cost.procs = p;
  // One of c layers performs 1/c of the k-rounds of SUMMA on a
  // sqrt(P/c) grid, plus the initial replication of both operands and
  // the final reduction of C across layers.
  const double grid = std::sqrt(p / c);
  cost.bandwidth_cost = 4.0 * n * n / (c * grid)            // panel traffic
                        + 2.0 * (n * n / p) * (c - 1.0)     // replication
                        + (n * n / p) * (c - 1.0);          // reduction
  cost.memory_per_proc = 3.0 * c * n * n / p;
  return cost;
}

}  // namespace pathrouting::parallel
