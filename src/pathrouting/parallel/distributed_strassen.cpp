#include "pathrouting/parallel/distributed_strassen.hpp"

#include "pathrouting/matmul/strassen_like.hpp"

namespace pathrouting::parallel {

namespace {

using matmul::Matrix;

/// Inner-row ownership: rows [start(p), start(p+1)) of every block
/// belong to processor p.
std::size_t row_start(std::size_t rows, int procs, int p) {
  return rows * static_cast<std::size_t>(p) / static_cast<std::size_t>(procs);
}

}  // namespace

DistributedResult run_distributed_strassen_like(
    const BilinearAlgorithm& alg, const Matrix<std::int64_t>& a,
    const Matrix<std::int64_t>& b, Machine& machine, std::size_t cutoff) {
  const int n0 = alg.n0();
  const int nb = alg.b();
  PR_REQUIRE(machine.procs() == static_cast<std::uint64_t>(nb));
  const std::size_t n = a.rows();
  PR_REQUIRE(a.cols() == n && b.rows() == n && b.cols() == n);
  PR_REQUIRE(n % static_cast<std::size_t>(n0) == 0);
  const std::size_t half = n / static_cast<std::size_t>(n0);
  // The int64 data path needs integer coefficients (all catalog
  // algorithms qualify; basis-transformed ones may not).
  for (int q = 0; q < nb; ++q) {
    for (int d = 0; d < alg.a(); ++d) {
      PR_REQUIRE_MSG(alg.u(q, d).is_integer() && alg.v(q, d).is_integer() &&
                         alg.w(d, q).is_integer(),
                     "integer execution needs integer coefficients");
    }
  }

  // Phase 0 (local): every processor encodes its inner-row slice of
  // every T_q^A / T_q^B. We materialise the full operands and account
  // ownership analytically (the simulation runs in one address space).
  std::vector<Matrix<std::int64_t>> ta(static_cast<std::size_t>(nb)),
      tb(static_cast<std::size_t>(nb));
  for (int q = 0; q < nb; ++q) {
    Matrix<std::int64_t> ua(half, half), ub(half, half);
    for (int d = 0; d < alg.a(); ++d) {
      const std::size_t bi = static_cast<std::size_t>(d / n0) * half;
      const std::size_t bj = static_cast<std::size_t>(d % n0) * half;
      const auto& cu = alg.u(q, d);
      const auto& cv = alg.v(q, d);
      for (std::size_t i = 0; i < half; ++i) {
        for (std::size_t j = 0; j < half; ++j) {
          if (!cu.is_zero()) {
            ua(i, j) += cu.num() * a(bi + i, bj + j);
          }
          if (!cv.is_zero()) {
            ub(i, j) += cv.num() * b(bi + i, bj + j);
          }
        }
      }
    }
    ta[static_cast<std::size_t>(q)] = std::move(ua);
    tb[static_cast<std::size_t>(q)] = std::move(ub);
  }

  // Phase 1 (superstep): slice exchange — processor p sends its rows
  // of (T_q^A, T_q^B) to processor q, for every q != p.
  for (int p = 0; p < nb; ++p) {
    const std::size_t rows = row_start(half, nb, p + 1) - row_start(half, nb, p);
    for (int q = 0; q < nb; ++q) {
      if (q == p) continue;
      machine.send(p, q, 2 * rows * half);
    }
  }
  machine.end_superstep();

  // Phase 2 (local): processor q multiplies its operand pair.
  std::vector<Matrix<std::int64_t>> products;
  products.reserve(static_cast<std::size_t>(nb));
  for (int q = 0; q < nb; ++q) {
    products.push_back(matmul::strassen_like_multiply(
        alg, ta[static_cast<std::size_t>(q)], tb[static_cast<std::size_t>(q)],
        cutoff));
  }

  // Phase 3 (superstep): scatter products back by inner row.
  for (int q = 0; q < nb; ++q) {
    for (int p = 0; p < nb; ++p) {
      if (p == q) continue;
      const std::size_t rows =
          row_start(half, nb, p + 1) - row_start(half, nb, p);
      machine.send(q, p, rows * half);
    }
  }
  machine.end_superstep();

  // Phase 4 (local): decode C block-wise and verify.
  Matrix<std::int64_t> c(n, n);
  for (int d = 0; d < alg.a(); ++d) {
    const std::size_t bi = static_cast<std::size_t>(d / n0) * half;
    const std::size_t bj = static_cast<std::size_t>(d % n0) * half;
    for (int q = 0; q < nb; ++q) {
      const auto& cw = alg.w(d, q);
      if (cw.is_zero()) continue;
      const auto& pq = products[static_cast<std::size_t>(q)];
      for (std::size_t i = 0; i < half; ++i) {
        for (std::size_t j = 0; j < half; ++j) {
          c(bi + i, bj + j) += cw.num() * pq(i, j);
        }
      }
    }
  }

  DistributedResult result;
  result.bandwidth_cost = machine.bandwidth_cost();
  result.total_words = machine.total_words();
  result.supersteps = machine.supersteps();
  result.correct = c == matmul::naive_multiply(a, b);
  return result;
}

DistributedResult simulate_distributed_strassen_like(
    const BilinearAlgorithm& alg, std::size_t n, Machine& machine) {
  const auto n0 = static_cast<std::size_t>(alg.n0());
  const auto b = static_cast<std::uint64_t>(alg.b());
  PR_REQUIRE(machine.procs() == b);
  PR_REQUIRE(n % n0 == 0);
  const std::uint64_t half = n / n0;

  // rows_p = floor(h(p+1)/b) - floor(hp/b) takes only the two values
  // lo = floor(h/b) and lo+1, with exactly h mod b processors on the
  // high value — so each phase needs at most two class records.
  const std::uint64_t lo = half / b;
  const std::uint64_t hi_count = half % b;
  const std::uint64_t lo_count = b - hi_count;
  struct RowClass {
    std::uint64_t members;
    std::uint64_t rows;
  };
  const RowClass classes[2] = {{lo_count, lo}, {hi_count, lo + 1}};

  // Phase 1: p sends 2*rows_p*half to every q != p; q receives the
  // complement 2*(half - rows_q)*half.
  for (const RowClass& rc : classes) {
    if (rc.members == 0) continue;
    machine.send_class(
        rc.members,
        checked_mul(b - 1, checked_mul(2 * rc.rows, half)),
        checked_mul(2, checked_mul(half - rc.rows, half)));
  }
  machine.end_superstep();

  // Phase 3: q scatters (half - rows_q)*half product words and p
  // receives its rows from the b-1 others.
  for (const RowClass& rc : classes) {
    if (rc.members == 0) continue;
    machine.send_class(rc.members, checked_mul(half - rc.rows, half),
                       checked_mul(b - 1, checked_mul(rc.rows, half)));
  }
  machine.end_superstep();

  DistributedResult result;
  result.bandwidth_cost = machine.bandwidth_cost();
  result.total_words = machine.total_words();
  result.supersteps = machine.supersteps();
  result.correct = true;  // accounting-level: no data to get wrong
  return result;
}

}  // namespace pathrouting::parallel
