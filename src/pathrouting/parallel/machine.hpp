// Simulated distributed-memory machine (the paper's parallel model):
// P processors, each with local memory M words, communicating by
// point-to-point messages. The bandwidth cost of an execution is the
// number of words moved along the critical path — modelled here as the
// sum over supersteps of the maximum per-processor traffic (words sent
// plus received) in that superstep, the standard BSP accounting that
// matches "words sent simultaneously count once" ([16], Section 1).
#pragma once

#include <cstdint>
#include <vector>

#include "pathrouting/support/check.hpp"

namespace pathrouting::parallel {

class Machine {
 public:
  Machine(int num_procs, std::uint64_t local_memory);

  [[nodiscard]] int procs() const { return static_cast<int>(sent_.size()); }
  [[nodiscard]] std::uint64_t local_memory() const { return local_memory_; }

  /// Records a `words`-word message in the current superstep.
  void send(int from, int to, std::uint64_t words);

  /// Closes the superstep: adds the max per-processor traffic to the
  /// bandwidth cost. No-op if nothing was sent.
  void end_superstep();

  /// Memory accounting: processors allocate and release words; peak
  /// usage is tracked against the local memory limit (reported, not
  /// enforced — experiments explore both regimes).
  void alloc(int proc, std::uint64_t words);
  void release(int proc, std::uint64_t words);

  [[nodiscard]] std::uint64_t bandwidth_cost() const { return bandwidth_; }
  [[nodiscard]] std::uint64_t total_words() const { return total_words_; }
  [[nodiscard]] std::uint64_t supersteps() const { return supersteps_; }
  [[nodiscard]] std::uint64_t peak_memory() const { return peak_memory_; }
  [[nodiscard]] bool within_memory() const {
    return peak_memory_ <= local_memory_;
  }

 private:
  std::uint64_t local_memory_;
  std::vector<std::uint64_t> sent_, received_, in_use_;
  std::uint64_t bandwidth_ = 0;
  std::uint64_t total_words_ = 0;
  std::uint64_t supersteps_ = 0;
  std::uint64_t peak_memory_ = 0;
};

}  // namespace pathrouting::parallel
