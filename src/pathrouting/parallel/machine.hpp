// Simulated distributed-memory machine (the paper's parallel model):
// P processors, each with local memory M words, communicating by
// point-to-point messages. The bandwidth cost of an execution is the
// number of words moved along the critical path — modelled here as the
// sum over supersteps of the maximum per-processor traffic (words sent
// plus received) in that superstep, the standard BSP accounting that
// matches "words sent simultaneously count once" ([16], Section 1).
//
// Two accounting paths share the counters:
//
//  * the scalar path (send/alloc/release with explicit processor ids)
//    uses a superstep-batched sparse accumulator: per-processor slots
//    are epoch-stamped instead of cleared, and a touched-processor
//    scratch list makes end_superstep() O(active processors) with zero
//    allocation in steady state. It is bit-identical to the dense
//    reference implementation (DenseMachine below), which iterates all
//    P slots per superstep.
//  * the class-aggregate path (send_class/alloc_all): CAPS, SUMMA, and
//    2.5D schedules send identical word counts to whole processor
//    classes, so a class of `class_size` processors with a common
//    (sent, received) per-processor profile is recorded in O(1). No
//    per-processor state is ever allocated, which is what lets a
//    10^6-processor superstep machine run a full strong-scaling sweep
//    in microseconds per superstep (bench_distributed_scaling).
//
// Every counter update is an overflow-checked u64 add/mul: at P = 10^6
// a single malformed class record could silently wrap bandwidth_ or
// total_words_, and the counts are the experiment's product. The
// machine also keeps a per-superstep conservation log (total words
// sent / received / the charged maximum) — the surface the audit rule
// machine.superstep-conservation checks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pathrouting/support/check.hpp"

namespace pathrouting::parallel {

/// a + b, aborting on u64 overflow (machine counters never wrap).
[[nodiscard]] inline std::uint64_t checked_add(std::uint64_t a,
                                               std::uint64_t b) {
  PR_REQUIRE_MSG(a <= UINT64_MAX - b, "machine counter overflows u64");
  return a + b;
}

/// a * b, aborting on u64 overflow (class totals never wrap).
[[nodiscard]] inline std::uint64_t checked_mul(std::uint64_t a,
                                               std::uint64_t b) {
  PR_REQUIRE_MSG(b == 0 || a <= UINT64_MAX / b,
                 "machine counter overflows u64");
  return a * b;
}

class Machine {
 public:
  Machine(std::uint64_t num_procs, std::uint64_t local_memory);

  [[nodiscard]] std::uint64_t procs() const { return num_procs_; }
  [[nodiscard]] std::uint64_t local_memory() const { return local_memory_; }

  /// Records a `words`-word message in the current superstep (scalar
  /// path; allocates the per-processor slots on first use).
  void send(std::uint64_t from, std::uint64_t to, std::uint64_t words);

  /// Records a class of `class_size` processors, each of which sends
  /// `sent_per_proc` and receives `received_per_proc` words in the
  /// current superstep, in O(1). Within a superstep, class records
  /// stand for disjoint processor sets, disjoint from every
  /// scalar-touched processor; the caller owns that precondition (the
  /// machine never learns the member ids). The symmetric overload
  /// covers the all-exchange-within-the-class case.
  void send_class(std::uint64_t class_size, std::uint64_t sent_per_proc,
                  std::uint64_t received_per_proc);
  void send_class(std::uint64_t class_size, std::uint64_t words) {
    send_class(class_size, words, words);
  }

  /// Closes the superstep: adds the max per-processor traffic to the
  /// bandwidth cost and appends a conservation-log entry. No-op if
  /// nothing was sent.
  void end_superstep();

  /// Memory accounting: processors allocate and release words; peak
  /// usage is tracked against the local memory limit (reported, not
  /// enforced — experiments explore both regimes). The scalar form
  /// (explicit processor) and the uniform form (every processor at
  /// once, O(1)) must not be mixed on one machine: their peaks are not
  /// reconcilable without dense state.
  void alloc(std::uint64_t proc, std::uint64_t words);
  void release(std::uint64_t proc, std::uint64_t words);
  void alloc_all(std::uint64_t words_per_proc);
  void release_all(std::uint64_t words_per_proc);

  [[nodiscard]] std::uint64_t bandwidth_cost() const { return bandwidth_; }
  [[nodiscard]] std::uint64_t total_words() const { return total_words_; }
  [[nodiscard]] std::uint64_t supersteps() const { return supersteps_; }
  [[nodiscard]] std::uint64_t peak_memory() const { return peak_memory_; }
  [[nodiscard]] bool within_memory() const {
    return peak_memory_ <= local_memory_;
  }

  /// Per-superstep conservation log, one entry per counted superstep
  /// (the audit surface of machine.superstep-conservation).
  [[nodiscard]] std::span<const std::uint64_t> step_sent() const {
    return log_sent_;
  }
  [[nodiscard]] std::span<const std::uint64_t> step_received() const {
    return log_received_;
  }
  [[nodiscard]] std::span<const std::uint64_t> step_max_traffic() const {
    return log_max_traffic_;
  }

 private:
  void ensure_traffic_slots();
  void ensure_memory_slots();
  /// Stamps `proc`'s traffic slot for the current superstep, zeroing a
  /// stale slot and adding it to the touched list.
  void touch(std::uint64_t proc);

  std::uint64_t num_procs_;
  std::uint64_t local_memory_;

  // Scalar traffic: epoch-stamped slots (a slot is live iff its stamp
  // equals epoch_) plus the touched scratch list — end_superstep never
  // scans all P and never clears arrays.
  std::vector<std::uint64_t> sent_, received_;
  std::vector<std::uint64_t> traffic_epoch_;
  std::vector<std::uint64_t> touched_;
  std::uint64_t epoch_ = 1;

  // Class-aggregate traffic for the current superstep.
  std::uint64_t class_max_traffic_ = 0;
  // Conservation totals for the current superstep (scalar + class).
  std::uint64_t step_sent_total_ = 0;
  std::uint64_t step_received_total_ = 0;

  // Memory: scalar per-processor slots (lazy) or the uniform track.
  enum class MemStyle : std::uint8_t { kNone, kScalar, kUniform };
  MemStyle mem_style_ = MemStyle::kNone;
  std::vector<std::uint64_t> in_use_;
  std::uint64_t uniform_in_use_ = 0;

  std::uint64_t bandwidth_ = 0;
  std::uint64_t total_words_ = 0;
  std::uint64_t supersteps_ = 0;
  std::uint64_t peak_memory_ = 0;

  std::vector<std::uint64_t> log_sent_, log_received_, log_max_traffic_;
};

/// The dense reference machine: the pre-sparse implementation, kept
/// verbatim as the bit-identity oracle for the scalar path (tests
/// replay the same schedule through both and require every counter and
/// log entry to match). It allocates all three per-processor vectors
/// up front and scans every processor per superstep, so it is the
/// thing the sparse machine must agree with — not the thing to run at
/// P = 10^6.
class DenseMachine {
 public:
  DenseMachine(std::uint64_t num_procs, std::uint64_t local_memory);

  [[nodiscard]] std::uint64_t procs() const { return sent_.size(); }
  [[nodiscard]] std::uint64_t local_memory() const { return local_memory_; }

  void send(std::uint64_t from, std::uint64_t to, std::uint64_t words);
  void end_superstep();
  void alloc(std::uint64_t proc, std::uint64_t words);
  void release(std::uint64_t proc, std::uint64_t words);

  [[nodiscard]] std::uint64_t bandwidth_cost() const { return bandwidth_; }
  [[nodiscard]] std::uint64_t total_words() const { return total_words_; }
  [[nodiscard]] std::uint64_t supersteps() const { return supersteps_; }
  [[nodiscard]] std::uint64_t peak_memory() const { return peak_memory_; }
  [[nodiscard]] bool within_memory() const {
    return peak_memory_ <= local_memory_;
  }

  [[nodiscard]] std::span<const std::uint64_t> step_sent() const {
    return log_sent_;
  }
  [[nodiscard]] std::span<const std::uint64_t> step_received() const {
    return log_received_;
  }
  [[nodiscard]] std::span<const std::uint64_t> step_max_traffic() const {
    return log_max_traffic_;
  }

 private:
  std::uint64_t local_memory_;
  std::vector<std::uint64_t> sent_, received_, in_use_;
  std::uint64_t bandwidth_ = 0;
  std::uint64_t total_words_ = 0;
  std::uint64_t supersteps_ = 0;
  std::uint64_t peak_memory_ = 0;
  std::vector<std::uint64_t> log_sent_, log_received_, log_max_traffic_;
};

}  // namespace pathrouting::parallel
