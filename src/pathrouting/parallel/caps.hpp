// CAPS-style communication simulation of a parallel Strassen-like
// algorithm ([3]: Ballard, Demmel, Holtz, Lipshitz, Schwartz,
// "Communication-optimal parallel algorithm for Strassen's matrix
// multiplication", SPAA'12), generalised to any catalog base.
//
// The recursion over P = b^l processors interleaves
//   * BFS steps: the b subproblems are solved simultaneously by P/b
//     disjoint processor groups; the encoded operands are redistributed
//     (Theta(s/g) words per processor, one superstep) and the b product
//     blocks are gathered back for decoding (second superstep);
//   * DFS steps: all processors cooperate on the b subproblems one at
//     a time; encoding/decoding is element-aligned and local, costing
//     no communication but extra memory for the in-flight operands.
// The policy takes DFS steps while the all-BFS tail would overflow the
// local memory M, matching the limited-memory CAPS schedule. Since all
// processors are symmetric, per-processor accounting of one processor
// equals the critical-path bandwidth cost.
//
// This is an *accounting-level* simulation (word counts move, values do
// not) — see DESIGN.md's substitution table. The value-level SUMMA
// simulator (summa.hpp) covers end-to-end correctness of the machine
// model itself.
#pragma once

#include "pathrouting/bilinear/bilinear.hpp"
#include "pathrouting/parallel/machine.hpp"

namespace pathrouting::parallel {

using bilinear::BilinearAlgorithm;

struct CapsOptions {
  int bfs_levels = 0;          // l: P = b^l processors
  std::uint64_t local_memory = 0;  // M words per processor
};

struct CapsResult {
  double procs = 0;            // P = b^l
  double bandwidth_cost = 0;   // words on the critical path
  double total_words = 0;      // summed over processors
  std::uint64_t supersteps = 0;
  double peak_memory = 0;      // max per-processor words in use
  int bfs_steps = 0;
  int dfs_steps = 0;
  [[nodiscard]] bool within_memory(std::uint64_t m) const {
    return peak_memory <= static_cast<double>(m);
  }
};

/// Simulates multiplying n0^r x n0^r matrices on P = b^l processors
/// with local memory M. Requires r >= l (enough recursion to spend the
/// BFS steps). DFS steps beyond r-l are not available, so with very
/// small M the result may exceed it (reported via within_memory).
CapsResult simulate_caps(const BilinearAlgorithm& alg, int r,
                         const CapsOptions& options);

/// Integral counters from the CAPS superstep machine replay.
struct CapsMachineResult {
  std::uint64_t procs = 0;
  std::uint64_t bandwidth_cost = 0;
  std::uint64_t total_words = 0;
  std::uint64_t supersteps = 0;
  int bfs_steps = 0;
  int dfs_steps = 0;
};

/// Replays the same CAPS schedule (identical BFS/DFS policy decisions
/// as simulate_caps) through the Machine's class-aggregate path: all
/// P = b^l processors are one symmetric class, every redistribute /
/// gather superstep is a single send_class record, and fractional
/// per-processor shares round *up* to whole words. The machine's u64
/// bandwidth therefore brackets the double model from above by at most
/// 3 words per superstep, while gaining exact conservation logs and
/// overflow-checked arithmetic the double model cannot provide.
/// `machine` must have exactly b^l processors.
CapsMachineResult simulate_caps_machine(const BilinearAlgorithm& alg, int r,
                                        const CapsOptions& options,
                                        Machine& machine);

}  // namespace pathrouting::parallel
