#include "pathrouting/parallel/caps.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "pathrouting/support/check.hpp"

namespace pathrouting::parallel {

namespace {

/// Effect of one recursive multiply on a (symmetric) processor,
/// relative to its state at call entry. Contract: on entry the
/// processor holds its 2s/g operand share (already counted in the
/// caller's memory); on exit that share is replaced by the s/g product
/// share, i.e. `net = -s/g`.
struct Delta {
  double traffic = 0;      // words sent + received by this processor
  double words = 0;        // words moved, summed over all processors
  std::uint64_t supersteps = 0;
  double peak = 0;         // max memory above entry level during the call
  double net = 0;          // memory change at exit (negative: frees)
  int bfs_steps = 0;       // along the recursion path
  int dfs_steps = 0;
};

struct Simulator {
  const BilinearAlgorithm& alg;
  int r;
  double m;
  // The subproblem size and group size are functions of (level,
  // bfs_remaining), so sibling subproblems have identical deltas.
  std::map<std::pair<int, int>, Delta> memo;

  [[nodiscard]] double bfs_tail_need(double share, int bfs_remaining) const {
    const double growth =
        std::pow(static_cast<double>(alg.b()) / alg.a(), bfs_remaining);
    return 3.0 * share * growth;
  }

  Delta run(int level, int bfs_remaining) {
    const auto key = std::make_pair(level, bfs_remaining);
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
    const double a = alg.a();
    const double b = alg.b();
    const double s = std::pow(a, r - level);       // operand elements
    const double g = std::pow(b, bfs_remaining);   // group size
    Delta d;
    if (bfs_remaining == 0) {
      // Sequential base case: transient temporaries, then C replaces
      // the operands.
      d.peak = 3.0 * s / a;
      d.net = -s;  // 2s held -> s held
      memo[key] = d;
      return d;
    }
    PR_REQUIRE_MSG(level < r, "recursion exhausted before P was spent");
    const double share = 2.0 * s / g;
    const bool must_bfs = level + bfs_remaining >= r;
    const bool bfs_fits = bfs_tail_need(share, bfs_remaining) <= m;
    if (bfs_fits || must_bfs) {
      // ---- BFS step: b subproblems solved by disjoint subgroups. ----
      d.bfs_steps = 1;
      double mem = 0;  // relative to entry
      const double enc = 2.0 * b * (s / a) / g;
      mem += enc;                      // encoded sub-operands
      d.peak = std::max(d.peak, mem);
      mem -= 2.0 * s / g;              // parent operands consumed
      // Redistribute the encodings to their subgroups.
      d.traffic += 2.0 * (2.0 * (b - 1.0) * (s / a) / g);
      d.words += 2.0 * (b - 1.0) * (s / a) / g * g;
      d.supersteps += 1;
      const Delta child = run(level + 1, bfs_remaining - 1);
      d.peak = std::max(d.peak, mem + child.peak);
      mem += child.net;
      d.traffic += child.traffic;
      d.words += child.words * (b / 1.0);  // b subgroups act in parallel
      d.supersteps += child.supersteps;
      d.bfs_steps += child.bfs_steps;
      d.dfs_steps += child.dfs_steps;
      // Gather the b product blocks for decoding.
      d.traffic += 2.0 * ((b - 1.0) * (s / a) / g);
      d.words += (b - 1.0) * (s / a) / g * g;
      d.supersteps += 1;
      mem += s / g;                    // C share
      d.peak = std::max(d.peak, mem);
      mem -= b * (s / a) / g;          // products consumed
      d.net = mem;
    } else {
      // ---- DFS step: all g processors solve the b subproblems in
      // sequence; encoding is element-aligned and local. ----
      d.dfs_steps = 1;
      const Delta child = run(level + 1, bfs_remaining);
      double mem = 0;
      for (int q = 0; q < alg.b(); ++q) {
        mem += 2.0 * (s / a) / g;      // encode subproblem q
        d.peak = std::max(d.peak, mem + child.peak);
        mem += child.net;              // operands -> product share
        d.traffic += child.traffic;
        d.words += child.words;
        d.supersteps += child.supersteps;
      }
      d.bfs_steps += child.bfs_steps;
      d.dfs_steps += child.dfs_steps;
      mem += s / g;                    // decode C
      d.peak = std::max(d.peak, mem);
      mem -= b * (s / a) / g;          // products consumed
      mem -= 2.0 * s / g;              // parent operands consumed
      d.net = mem;
    }
    memo[key] = d;
    return d;
  }
};

}  // namespace

namespace {

/// base^exp with overflow-checked u64 arithmetic.
std::uint64_t checked_pow(std::uint64_t base, int exp) {
  std::uint64_t out = 1;
  for (int i = 0; i < exp; ++i) out = checked_mul(out, base);
  return out;
}

std::uint64_t ceil_div(std::uint64_t num, std::uint64_t den) {
  PR_ASSERT(den >= 1);
  return num / den + (num % den != 0 ? 1 : 0);
}

}  // namespace

CapsResult simulate_caps(const BilinearAlgorithm& alg, int r,
                         const CapsOptions& options) {
  PR_REQUIRE(r >= 1);
  PR_REQUIRE(options.bfs_levels >= 0);
  PR_REQUIRE(options.bfs_levels <= r);
  PR_REQUIRE(options.local_memory >= 1);
  Simulator sim{alg, r, static_cast<double>(options.local_memory), {}};
  const double s = std::pow(static_cast<double>(alg.a()), r);
  const double p = std::pow(static_cast<double>(alg.b()), options.bfs_levels);
  const Delta d = sim.run(0, options.bfs_levels);
  CapsResult result;
  result.procs = p;
  result.bandwidth_cost = d.traffic;
  result.total_words = d.words;
  result.supersteps = d.supersteps;
  result.peak_memory = 2.0 * s / p + d.peak;  // entry shares + excursion
  result.bfs_steps = d.bfs_steps;
  result.dfs_steps = d.dfs_steps;
  return result;
}

CapsMachineResult simulate_caps_machine(const BilinearAlgorithm& alg, int r,
                                        const CapsOptions& options,
                                        Machine& machine) {
  PR_REQUIRE(r >= 1);
  PR_REQUIRE(options.bfs_levels >= 0);
  PR_REQUIRE(options.bfs_levels <= r);
  PR_REQUIRE(options.local_memory >= 1);
  const auto a = static_cast<std::uint64_t>(alg.a());
  const auto b = static_cast<std::uint64_t>(alg.b());
  const std::uint64_t p = checked_pow(b, options.bfs_levels);
  PR_REQUIRE(machine.procs() == p);
  const auto mem = static_cast<double>(options.local_memory);

  // The schedule is a single decision chain: the (level, bfs_remaining)
  // state determines the step, a DFS step runs b identical copies of
  // the rest of the chain in sequence (multiplying the superstep count
  // by b), and a BFS step spends one level of the processor tree. All
  // P processors are symmetric throughout, so each communication
  // superstep is one whole-machine class record.
  CapsMachineResult result;
  result.procs = p;
  std::uint64_t mult = 1;  // sequential repeats from DFS ancestors
  int level = 0;
  int m = options.bfs_levels;
  while (m > 0) {
    PR_REQUIRE_MSG(level < r, "recursion exhausted before P was spent");
    const double s = std::pow(static_cast<double>(a), r - level);
    const double g = std::pow(static_cast<double>(b), m);
    const double share = 2.0 * s / g;
    const double growth =
        std::pow(static_cast<double>(b) / static_cast<double>(a), m);
    const bool must_bfs = level + m >= r;
    const bool bfs_fits = 3.0 * share * growth <= mem;
    if (bfs_fits || must_bfs) {
      // BFS: redistribute both encoded operands, then (post-children)
      // gather the b product blocks. Per-processor shares (b-1)(s/a)/g
      // round up to whole words per superstep.
      const std::uint64_t sub = checked_pow(a, r - level - 1);
      const std::uint64_t den = checked_pow(b, m);
      const std::uint64_t w_redist =
          ceil_div(checked_mul(2 * (b - 1), sub), den);
      const std::uint64_t w_gather = ceil_div(checked_mul(b - 1, sub), den);
      PR_REQUIRE_MSG(mult <= (1ull << 22),
                     "DFS repetition exceeds the replay superstep budget");
      for (std::uint64_t i = 0; i < mult; ++i) {
        machine.send_class(p, w_redist);
        machine.end_superstep();
        machine.send_class(p, w_gather);
        machine.end_superstep();
      }
      ++result.bfs_steps;
      --m;
    } else {
      mult = checked_mul(mult, b);
      ++result.dfs_steps;
    }
    ++level;
  }
  result.bandwidth_cost = machine.bandwidth_cost();
  result.total_words = machine.total_words();
  result.supersteps = machine.supersteps();
  return result;
}

}  // namespace pathrouting::parallel
