#include "pathrouting/parallel/machine.hpp"

#include <algorithm>

namespace pathrouting::parallel {

Machine::Machine(std::uint64_t num_procs, std::uint64_t local_memory)
    : num_procs_(num_procs), local_memory_(local_memory) {
  PR_REQUIRE(num_procs >= 1);
}

void Machine::ensure_traffic_slots() {
  if (!sent_.empty()) return;
  // The scalar path needs per-processor slots; huge machines must use
  // the class-aggregate path (that is the point of this machine).
  PR_REQUIRE_MSG(num_procs_ <= (1ull << 24),
                 "scalar send() on a huge machine; use send_class()");
  const auto n = static_cast<std::size_t>(num_procs_);
  sent_.assign(n, 0);
  received_.assign(n, 0);
  traffic_epoch_.assign(n, 0);
}

void Machine::touch(std::uint64_t proc) {
  const auto p = static_cast<std::size_t>(proc);
  if (traffic_epoch_[p] != epoch_) {
    traffic_epoch_[p] = epoch_;
    sent_[p] = 0;
    received_[p] = 0;
    touched_.push_back(proc);
  }
}

void Machine::send(std::uint64_t from, std::uint64_t to,
                   std::uint64_t words) {
  PR_REQUIRE(from < num_procs_);
  PR_REQUIRE(to < num_procs_);
  if (from == to || words == 0) return;  // local moves are free
  ensure_traffic_slots();
  touch(from);
  touch(to);
  sent_[static_cast<std::size_t>(from)] =
      checked_add(sent_[static_cast<std::size_t>(from)], words);
  received_[static_cast<std::size_t>(to)] =
      checked_add(received_[static_cast<std::size_t>(to)], words);
  step_sent_total_ = checked_add(step_sent_total_, words);
  step_received_total_ = checked_add(step_received_total_, words);
}

void Machine::send_class(std::uint64_t class_size,
                         std::uint64_t sent_per_proc,
                         std::uint64_t received_per_proc) {
  PR_REQUIRE(class_size >= 1 && class_size <= num_procs_);
  const std::uint64_t traffic = checked_add(sent_per_proc, received_per_proc);
  if (traffic == 0) return;
  class_max_traffic_ = std::max(class_max_traffic_, traffic);
  step_sent_total_ = checked_add(step_sent_total_,
                                 checked_mul(class_size, sent_per_proc));
  step_received_total_ = checked_add(
      step_received_total_, checked_mul(class_size, received_per_proc));
}

void Machine::end_superstep() {
  std::uint64_t max_traffic = class_max_traffic_;
  for (const std::uint64_t proc : touched_) {
    const auto p = static_cast<std::size_t>(proc);
    max_traffic = std::max(max_traffic, checked_add(sent_[p], received_[p]));
  }
  touched_.clear();
  ++epoch_;  // invalidates every stamped slot without writing them
  class_max_traffic_ = 0;
  const std::uint64_t sent_total = step_sent_total_;
  const std::uint64_t received_total = step_received_total_;
  step_sent_total_ = 0;
  step_received_total_ = 0;
  total_words_ = checked_add(total_words_, sent_total);
  if (max_traffic > 0) {
    bandwidth_ = checked_add(bandwidth_, max_traffic);
    ++supersteps_;
    log_sent_.push_back(sent_total);
    log_received_.push_back(received_total);
    log_max_traffic_.push_back(max_traffic);
  }
}

void Machine::ensure_memory_slots() {
  PR_REQUIRE_MSG(mem_style_ != MemStyle::kUniform,
                 "scalar alloc() after alloc_all() on one machine");
  mem_style_ = MemStyle::kScalar;
  if (!in_use_.empty()) return;
  PR_REQUIRE_MSG(num_procs_ <= (1ull << 24),
                 "scalar alloc() on a huge machine; use alloc_all()");
  in_use_.assign(static_cast<std::size_t>(num_procs_), 0);
}

void Machine::alloc(std::uint64_t proc, std::uint64_t words) {
  PR_REQUIRE(proc < num_procs_);
  ensure_memory_slots();
  const auto p = static_cast<std::size_t>(proc);
  in_use_[p] = checked_add(in_use_[p], words);
  peak_memory_ = std::max(peak_memory_, in_use_[p]);
}

void Machine::release(std::uint64_t proc, std::uint64_t words) {
  PR_REQUIRE(proc < num_procs_);
  PR_REQUIRE(mem_style_ == MemStyle::kScalar);
  const auto p = static_cast<std::size_t>(proc);
  PR_REQUIRE(in_use_[p] >= words);
  in_use_[p] -= words;
}

void Machine::alloc_all(std::uint64_t words_per_proc) {
  PR_REQUIRE_MSG(mem_style_ != MemStyle::kScalar,
                 "alloc_all() after scalar alloc() on one machine");
  mem_style_ = MemStyle::kUniform;
  uniform_in_use_ = checked_add(uniform_in_use_, words_per_proc);
  peak_memory_ = std::max(peak_memory_, uniform_in_use_);
}

void Machine::release_all(std::uint64_t words_per_proc) {
  PR_REQUIRE(mem_style_ == MemStyle::kUniform);
  PR_REQUIRE(uniform_in_use_ >= words_per_proc);
  uniform_in_use_ -= words_per_proc;
}

DenseMachine::DenseMachine(std::uint64_t num_procs,
                           std::uint64_t local_memory)
    : local_memory_(local_memory),
      sent_(static_cast<std::size_t>(num_procs), 0),
      received_(static_cast<std::size_t>(num_procs), 0),
      in_use_(static_cast<std::size_t>(num_procs), 0) {
  PR_REQUIRE(num_procs >= 1);
}

void DenseMachine::send(std::uint64_t from, std::uint64_t to,
                        std::uint64_t words) {
  PR_REQUIRE(from < procs());
  PR_REQUIRE(to < procs());
  if (from == to || words == 0) return;  // local moves are free
  sent_[static_cast<std::size_t>(from)] += words;
  received_[static_cast<std::size_t>(to)] += words;
}

void DenseMachine::end_superstep() {
  std::uint64_t max_traffic = 0;
  std::uint64_t sent_total = 0;
  for (std::size_t p = 0; p < sent_.size(); ++p) {
    max_traffic = std::max(max_traffic, sent_[p] + received_[p]);
    sent_total += sent_[p];
    sent_[p] = 0;
  }
  std::uint64_t received_total = 0;
  for (std::size_t p = 0; p < received_.size(); ++p) {
    received_total += received_[p];
    received_[p] = 0;
  }
  total_words_ += sent_total;
  if (max_traffic > 0) {
    bandwidth_ += max_traffic;
    ++supersteps_;
    log_sent_.push_back(sent_total);
    log_received_.push_back(received_total);
    log_max_traffic_.push_back(max_traffic);
  }
}

void DenseMachine::alloc(std::uint64_t proc, std::uint64_t words) {
  PR_REQUIRE(proc < procs());
  const auto p = static_cast<std::size_t>(proc);
  in_use_[p] += words;
  peak_memory_ = std::max(peak_memory_, in_use_[p]);
}

void DenseMachine::release(std::uint64_t proc, std::uint64_t words) {
  PR_REQUIRE(proc < procs());
  const auto p = static_cast<std::size_t>(proc);
  PR_REQUIRE(in_use_[p] >= words);
  in_use_[p] -= words;
}

}  // namespace pathrouting::parallel
