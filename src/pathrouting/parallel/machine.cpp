#include "pathrouting/parallel/machine.hpp"

#include <algorithm>

namespace pathrouting::parallel {

Machine::Machine(int num_procs, std::uint64_t local_memory)
    : local_memory_(local_memory),
      sent_(static_cast<std::size_t>(num_procs), 0),
      received_(static_cast<std::size_t>(num_procs), 0),
      in_use_(static_cast<std::size_t>(num_procs), 0) {
  PR_REQUIRE(num_procs >= 1);
}

void Machine::send(int from, int to, std::uint64_t words) {
  PR_REQUIRE(from >= 0 && from < procs());
  PR_REQUIRE(to >= 0 && to < procs());
  if (from == to || words == 0) return;  // local moves are free
  sent_[static_cast<std::size_t>(from)] += words;
  received_[static_cast<std::size_t>(to)] += words;
  total_words_ += words;
}

void Machine::end_superstep() {
  std::uint64_t max_traffic = 0;
  for (int p = 0; p < procs(); ++p) {
    const std::uint64_t traffic = sent_[static_cast<std::size_t>(p)] +
                                  received_[static_cast<std::size_t>(p)];
    max_traffic = std::max(max_traffic, traffic);
    sent_[static_cast<std::size_t>(p)] = 0;
    received_[static_cast<std::size_t>(p)] = 0;
  }
  if (max_traffic > 0) {
    bandwidth_ += max_traffic;
    ++supersteps_;
  }
}

void Machine::alloc(int proc, std::uint64_t words) {
  PR_REQUIRE(proc >= 0 && proc < procs());
  in_use_[static_cast<std::size_t>(proc)] += words;
  peak_memory_ =
      std::max(peak_memory_, in_use_[static_cast<std::size_t>(proc)]);
}

void Machine::release(int proc, std::uint64_t words) {
  PR_REQUIRE(proc >= 0 && proc < procs());
  PR_REQUIRE(in_use_[static_cast<std::size_t>(proc)] >= words);
  in_use_[static_cast<std::size_t>(proc)] -= words;
}

}  // namespace pathrouting::parallel
