// Strong-scaling sweep runner shared by bench_distributed_scaling and
// pr_bench_gate: one (schedule, regime, P) point of the
// Ballard-Demmel-Holtz-Schwartz-Lipshitz strong-scaling experiment
// (PAPERS.md, arXiv:1202.3177), executed on the sparse superstep
// machine through the class-aggregate path so P = 10^6 simulated
// processors cost microseconds, not gigabytes.
//
// Every point carries exact u64 machine counters (the determinism
// contract the bench gate re-derives) next to derived double fields
// (lower bounds, model curves, ratios) that the gate ignores — libm
// may differ across builders, word counts may not.
#pragma once

#include <cstdint>
#include <string>

#include "pathrouting/obs/bench_record.hpp"
#include "pathrouting/parallel/machine.hpp"

namespace pathrouting::parallel {

/// Inputs of one sweep point. schedule selects the simulator:
///  * "summa": classical 2D SUMMA on a grid x grid machine
///    (P = grid^2), problem size n, panel width `panel`;
///  * "caps": CAPS BFS/DFS on P = b^bfs_levels processors for the
///    catalog algorithm `algorithm`, problem size n0^r.
struct ScalingSpec {
  std::string schedule;   // "summa" | "caps"
  std::string algorithm;  // catalog name for caps; "classical" for summa
  std::string regime;     // "minimal" | "knee" | "unbounded"
  std::uint64_t n = 0;    // summa matrix dimension (caps derives n0^r)
  std::uint64_t grid = 0;     // summa
  std::uint64_t panel = 0;    // summa
  int r = 0;                  // caps
  int bfs_levels = 0;         // caps
};

struct ScalingPoint {
  ScalingSpec spec;
  std::uint64_t n = 0;  // realized dimension (spec.n or n0^r)
  std::uint64_t procs = 0;
  std::uint64_t local_memory = 0;  // the regime's M in words
  // Exact machine counters (compared bit-for-bit by pr_bench_gate).
  std::uint64_t bandwidth_cost = 0;
  std::uint64_t total_words = 0;
  std::uint64_t supersteps = 0;
  std::uint64_t peak_memory = 0;  // summa only (caps memory is modeled)
  int bfs_steps = 0;              // caps only
  int dfs_steps = 0;              // caps only
  // Derived doubles (never gated): BDHLS bounds and model curves.
  double omega0 = 0;
  double lb_mem_dependent = 0;    // (n/sqrt(M))^{w0} M / P
  double lb_mem_independent = 0;  // n^2 / P^{2/w0}
  double lb_combined = 0;         // max of the two
  double model_pmax = 0;          // perfect-scaling limit n^{w0}/M^{w0/2}
  double model_bandwidth = 0;     // double cost model for cross-checking
  double ratio_vs_lb = 0;         // bandwidth_cost / lb_combined
};

/// Local memory (words per processor) of a named regime at (n, P, w0):
///  * "minimal":   3n^2/P — just the distributed operands + product;
///  * "knee":      n^2/P^{2/w0} — exactly the M whose perfect-scaling
///                 limit P_max equals P (the falloff knee);
///  * "unbounded": 2^62, all-BFS territory.
std::uint64_t regime_memory(const std::string& regime, std::uint64_t n,
                            std::uint64_t procs, double w0);

/// Runs one sweep point (builds its own Machine).
ScalingPoint run_scaling_point(const ScalingSpec& spec);

/// Serializes a point onto the unified bench-record schema (experiment
/// "distributed_scaling"); spec fields are stored so the gate can
/// re-derive the point from the committed baseline alone.
void fill_scaling_record(const ScalingPoint& point, obs::BenchRecord& rec);

/// Rebuilds the spec from a baseline record written by
/// fill_scaling_record.
ScalingSpec scaling_spec_from_record(const obs::BenchRecord& rec);

}  // namespace pathrouting::parallel
