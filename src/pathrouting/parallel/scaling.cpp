#include "pathrouting/parallel/scaling.hpp"

#include <cmath>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/parallel/caps.hpp"
#include "pathrouting/parallel/summa.hpp"
#include "pathrouting/support/check.hpp"

namespace pathrouting::parallel {

namespace {

std::uint64_t u64_pow(std::uint64_t base, int exp) {
  std::uint64_t out = 1;
  for (int i = 0; i < exp; ++i) out = checked_mul(out, base);
  return out;
}

void finish_bounds(ScalingPoint& point, double w0) {
  const auto n = static_cast<double>(point.n);
  const auto p = static_cast<double>(point.procs);
  const auto m = static_cast<double>(point.local_memory);
  point.omega0 = w0;
  point.lb_mem_dependent = bounds::parallel_bandwidth_lb(n, m, p, w0);
  point.lb_mem_independent = bounds::memory_independent_lb(n, p, w0);
  point.lb_combined = bounds::strong_scaling_lb(n, m, p, w0);
  point.model_pmax = bounds::perfect_scaling_pmax(n, m, w0);
  point.ratio_vs_lb =
      point.lb_combined > 0
          ? static_cast<double>(point.bandwidth_cost) / point.lb_combined
          : 0.0;
}

ScalingPoint run_summa_point(const ScalingSpec& spec) {
  PR_REQUIRE(spec.grid >= 1 && spec.n >= 1);
  ScalingPoint point;
  point.spec = spec;
  point.n = spec.n;
  point.procs = checked_mul(spec.grid, spec.grid);
  // Classical schedule: the w0 = 3 bounds are the comparison curve.
  point.local_memory = regime_memory(spec.regime, spec.n, point.procs, 3.0);
  Machine machine(point.procs, point.local_memory);
  PR_REQUIRE(spec.n % spec.grid == 0);
  const std::uint64_t nb = spec.n / spec.grid;
  // Uniform residency: operand + product blocks plus the two in-flight
  // panel slices every processor buffers during a broadcast step.
  const std::uint64_t resident =
      checked_add(checked_mul(3, checked_mul(nb, nb)),
                  checked_mul(2, checked_mul(nb, spec.panel)));
  machine.alloc_all(resident);
  const SummaResult res =
      simulate_summa(spec.n, spec.grid, spec.panel, machine);
  machine.release_all(resident);
  point.bandwidth_cost = res.bandwidth_cost;
  point.total_words = res.total_words;
  point.supersteps = res.supersteps;
  point.peak_memory = machine.peak_memory();
  // Closed-form classical curve: 4 n^2 / grid for grid >= 3.
  point.model_bandwidth = spec.grid >= 3
                              ? 4.0 * static_cast<double>(spec.n) *
                                    static_cast<double>(spec.n) /
                                    static_cast<double>(spec.grid)
                              : static_cast<double>(res.bandwidth_cost);
  finish_bounds(point, 3.0);
  return point;
}

ScalingPoint run_caps_point(const ScalingSpec& spec) {
  const bilinear::BilinearAlgorithm alg = bilinear::by_name(spec.algorithm);
  PR_REQUIRE(spec.r >= 1 && spec.bfs_levels >= 1);
  ScalingPoint point;
  point.spec = spec;
  point.n = u64_pow(static_cast<std::uint64_t>(alg.n0()), spec.r);
  point.procs =
      u64_pow(static_cast<std::uint64_t>(alg.b()), spec.bfs_levels);
  const double w0 = alg.omega0();
  point.local_memory = regime_memory(spec.regime, point.n, point.procs, w0);
  const CapsOptions options{spec.bfs_levels, point.local_memory};
  Machine machine(point.procs, point.local_memory);
  const CapsMachineResult res =
      simulate_caps_machine(alg, spec.r, options, machine);
  point.bandwidth_cost = res.bandwidth_cost;
  point.total_words = res.total_words;
  point.supersteps = res.supersteps;
  point.bfs_steps = res.bfs_steps;
  point.dfs_steps = res.dfs_steps;
  point.model_bandwidth =
      simulate_caps(alg, spec.r, options).bandwidth_cost;
  finish_bounds(point, w0);
  return point;
}

}  // namespace

std::uint64_t regime_memory(const std::string& regime, std::uint64_t n,
                            std::uint64_t procs, double w0) {
  const std::uint64_t n2 = checked_mul(n, n);
  if (regime == "minimal") {
    const std::uint64_t m = checked_mul(3, n2) / procs;
    return m > 0 ? m : 1;
  }
  if (regime == "knee") {
    const double m = static_cast<double>(n2) /
                     std::pow(static_cast<double>(procs), 2.0 / w0);
    return m >= 1.0 ? static_cast<std::uint64_t>(m) : 1;
  }
  PR_REQUIRE_MSG(regime == "unbounded", "unknown memory regime");
  return 1ull << 62;
}

ScalingPoint run_scaling_point(const ScalingSpec& spec) {
  if (spec.schedule == "summa") return run_summa_point(spec);
  PR_REQUIRE_MSG(spec.schedule == "caps", "unknown scaling schedule");
  return run_caps_point(spec);
}

void fill_scaling_record(const ScalingPoint& point, obs::BenchRecord& rec) {
  const ScalingSpec& spec = point.spec;
  // "algorithm" is the gate's workload key; combined with k it must be
  // unique per (schedule, base algorithm, regime) sweep curve.
  rec.set("experiment", "distributed_scaling")
      .set("engine", "machine")
      .set("algorithm",
           spec.schedule + ":" + spec.algorithm + ":" + spec.regime)
      .set("k", spec.schedule == "caps"
                    ? spec.bfs_levels
                    : static_cast<int>(spec.grid))
      .set("schedule", spec.schedule)
      .set("base", spec.algorithm)
      .set("regime", spec.regime)
      .set("n", point.n)
      .set("grid", spec.grid)
      .set("panel", spec.panel)
      .set("r", spec.r)
      .set("bfs_levels", spec.bfs_levels)
      .set("procs", point.procs)
      .set("local_memory", point.local_memory)
      .set("bandwidth_cost", point.bandwidth_cost)
      .set("total_words", point.total_words)
      .set("supersteps", point.supersteps)
      .set("peak_memory", point.peak_memory)
      .set("bfs_steps", point.bfs_steps)
      .set("dfs_steps", point.dfs_steps)
      .set("omega0", point.omega0)
      .set("lb_mem_dependent", point.lb_mem_dependent)
      .set("lb_mem_independent", point.lb_mem_independent)
      .set("lb_combined", point.lb_combined)
      .set("model_pmax", point.model_pmax)
      .set("model_bandwidth", point.model_bandwidth)
      .set("ratio_vs_lb", point.ratio_vs_lb);
}

ScalingSpec scaling_spec_from_record(const obs::BenchRecord& rec) {
  ScalingSpec spec;
  spec.schedule = rec.text_or("schedule", "");
  spec.algorithm = rec.text_or("base", "");
  spec.regime = rec.text_or("regime", "");
  spec.grid = static_cast<std::uint64_t>(rec.int_or("grid", 0));
  spec.panel = static_cast<std::uint64_t>(rec.int_or("panel", 0));
  spec.r = static_cast<int>(rec.int_or("r", 0));
  spec.bfs_levels = static_cast<int>(rec.int_or("bfs_levels", 0));
  // summa stores its own n; caps re-derives n0^r.
  spec.n = spec.schedule == "summa"
               ? static_cast<std::uint64_t>(rec.int_or("n", 0))
               : 0;
  return spec;
}

}  // namespace pathrouting::parallel
