// Classical distributed-memory matmul baselines.
//
//  * run_summa: a *value-level* 2D SUMMA execution on a g x g processor
//    grid — blocks of real data move through the Machine (ring-pipelined
//    panel broadcasts), local GEMMs accumulate, and the assembled result
//    is verified against a sequential product. Exercises the machine
//    model end to end and realises the classical Theta(n^2/sqrt(P))
//    bandwidth that fast algorithms beat.
//  * simulate_summa: the same schedule at accounting level through the
//    Machine's class-aggregate path — each panel superstep is nine
//    (position-in-ring x position-in-ring) processor classes recorded
//    in O(1), bit-identical in every machine counter to run_summa yet
//    independent of the grid size (grids of 1024 x 1024 = 10^6
//    processors cost the same as 2 x 2).
//  * simulate_25d: accounting-level 2.5D (c-fold replication) cost
//    model: 4n^2/sqrt(cP) panel traffic plus replication/reduction.
#pragma once

#include <cstdint>

#include "pathrouting/matmul/matrix.hpp"
#include "pathrouting/parallel/machine.hpp"

namespace pathrouting::parallel {

struct SummaResult {
  std::uint64_t bandwidth_cost = 0;
  std::uint64_t total_words = 0;
  std::uint64_t supersteps = 0;
  bool correct = false;  // distributed result matched the reference
};

/// Runs SUMMA for C = A*B (square, n divisible by grid) on grid^2
/// processors with k-panels of width `panel`. The machine records all
/// traffic; the result is checked against naive_multiply.
SummaResult run_summa(const matmul::Matrix<std::int64_t>& a,
                      const matmul::Matrix<std::int64_t>& b, int grid,
                      std::size_t panel, Machine& machine);

/// Accounting-level SUMMA on an n x n problem over a grid^2-processor
/// machine: replays run_summa's communication schedule through
/// send_class (no data moves, so `correct` is vacuously true). Word
/// counts, supersteps, and the conservation log are bit-identical to
/// run_summa on the same (n, grid, panel).
SummaResult simulate_summa(std::size_t n, std::uint64_t grid,
                           std::size_t panel, Machine& machine);

struct Cost25D {
  double procs = 0;
  double bandwidth_cost = 0;      // per-processor words on critical path
  double memory_per_proc = 0;     // c * 3n^2 / P
};

/// 2.5D cost model: P processors, replication factor c (c | P, P/c a
/// square).
Cost25D simulate_25d(double n, double p, double c);

}  // namespace pathrouting::parallel
