// Value-level distributed Strassen-like multiplication: one BFS level
// of the CAPS scheme executed with real data on the simulated machine.
//
// P = b processors; every matrix (operands, encoded operands, products,
// result) is distributed by inner block-row: processor p owns a fixed
// range of the rows *within each n0 x n0 block*, so encoding and
// decoding are entirely local (they combine corresponding elements of
// different blocks). The two communication phases are
//   1. each processor sends its slice of encoded pair (T_q^A, T_q^B)
//      to processor q, which then owns whole operands;
//   2. processor q scatters its product P_q back by inner row for the
//      local decode.
// This realises, with actual words on the wire, exactly the per-
// processor traffic the CAPS accounting model (caps.hpp) charges for a
// BFS step — and the assembled result is verified against a sequential
// product.
#pragma once

#include "pathrouting/bilinear/bilinear.hpp"
#include "pathrouting/matmul/matrix.hpp"
#include "pathrouting/parallel/machine.hpp"

namespace pathrouting::parallel {

using bilinear::BilinearAlgorithm;

struct DistributedResult {
  std::uint64_t bandwidth_cost = 0;
  std::uint64_t total_words = 0;
  std::uint64_t supersteps = 0;
  bool correct = false;
};

/// Runs one BFS level on machine (which must have exactly alg.b()
/// processors). n must be divisible by n0; the local subproblems use
/// the sequential recursive executor below `cutoff`.
DistributedResult run_distributed_strassen_like(
    const BilinearAlgorithm& alg, const matmul::Matrix<std::int64_t>& a,
    const matmul::Matrix<std::int64_t>& b, Machine& machine,
    std::size_t cutoff = 16);

/// Accounting-level replay of the same two communication phases for an
/// n x n problem (no data moves; `correct` is vacuously true). Inner
/// block-rows are dealt by the floor split rows_p = floor(h(p+1)/b) -
/// floor(hp/b), so processors fall into at most two classes (the
/// floor(h/b)- and ceil(h/b)-row owners) per phase — each phase is
/// O(1) send_class records, bit-identical in every machine counter to
/// run_distributed_strassen_like on the same (alg, n).
DistributedResult simulate_distributed_strassen_like(
    const BilinearAlgorithm& alg, std::size_t n, Machine& machine);

}  // namespace pathrouting::parallel
