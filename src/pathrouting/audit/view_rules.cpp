// View-capable audit rules: the per-vertex subset of the cdag.* suite
// evaluated through a cdag::CdagView (so implicit graphs audit without
// whole-graph arrays), the exhaustive implicit-vs-explicit consistency
// rule (cdag.view-consistency), and the implicit routing engine
// reconciliation (routing.implicit-match).
//
// NOTE: audit::CdagView (the borrowed-span struct in audit.hpp) and
// cdag::CdagView (the polymorphic graph interface) are different types;
// everything here qualifies the latter explicitly.
#include <string>
#include <vector>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/audit/internal.hpp"
#include "pathrouting/cdag/view.hpp"
#include "pathrouting/support/parallel.hpp"

namespace pathrouting::audit {

namespace {

namespace parallel = support::parallel;
using cdag::kInvalidVertex;
using cdag::LayerKind;
using cdag::Layout;
using cdag::VertexRef;
using internal::error;
using internal::error_counts;
using internal::Findings;
using internal::flush;

constexpr std::uint64_t kScanGrain = 1 << 16;

/// Vertex budget of the sampled implicit scan: exhaustive below it,
/// a deterministic stride sample above (an implicit G_10 has ~2e9
/// vertices; a fixed sample keeps the audit O(1) in r while still
/// touching every rank).
constexpr std::uint64_t kViewSampleCap = 1 << 20;

/// One Findings buffer per view-safe rule, filled in a single pass.
struct ViewRuleFindings {
  Findings topo;
  Findings rank;
  Findings degree;
  Findings copy;
  Findings meta_root;
  Findings meta_subtree;
  Findings fact1;
};

void check_view_vertex(const cdag::CdagView& view, const VertexId v,
                       std::vector<VertexId>& in_scratch,
                       std::vector<VertexId>& out_scratch,
                       ViewRuleFindings& out) {
  const Layout& layout = view.layout();
  const std::uint64_t n = view.num_vertices();
  const auto a = static_cast<std::uint64_t>(layout.a());
  const auto b = static_cast<std::uint64_t>(layout.b());
  const int r = layout.r();
  const auto& pow_a = layout.pow_a();
  const VertexRef ref = layout.ref(v);
  const int level = layout.level(v);
  const auto preds = view.in(v, in_scratch);

  // Degree bounds, plus self-consistency of the synthesized lists
  // against the degree queries.
  const std::uint64_t deg = preds.size();
  if (deg != view.in_degree(v)) {
    out.degree.add(error_counts(
        "cdag.degree-bounds",
        "synthesized in-list length disagrees with in_degree",
        /*expected=*/view.in_degree(v), /*actual=*/deg, v));
  }
  {
    const auto succs = view.out(v, out_scratch);
    if (succs.size() != view.out_degree(v)) {
      out.degree.add(error_counts(
          "cdag.degree-bounds",
          "synthesized out-list length disagrees with out_degree",
          /*expected=*/view.out_degree(v), /*actual=*/succs.size(), v));
    }
  }
  if (ref.layer != LayerKind::Dec) {
    if (ref.rank == 0) {
      if (deg != 0) {
        out.degree.add(error_counts("cdag.degree-bounds",
                                    "input vertex has in-edges",
                                    /*expected=*/0, deg, v));
      }
    } else if (deg < 1 || deg > a) {
      out.degree.add(error_counts(
          "cdag.degree-bounds",
          "encoding vertex in-degree outside 1..a (Section 3)",
          /*expected=*/a, deg, v));
    }
  } else if (ref.rank == 0) {
    if (deg != 2) {
      out.degree.add(
          error_counts("cdag.degree-bounds",
                       "product vertex must have exactly two operands",
                       /*expected=*/2, deg, v));
    }
  } else if (deg < 1 || deg > b) {
    out.degree.add(error_counts(
        "cdag.degree-bounds",
        "decoding vertex in-degree outside 1..b (Section 3)",
        /*expected=*/b, deg, v));
  }

  for (const VertexId p : preds) {
    if (p >= v) {
      out.topo.add(error_counts(
          "cdag.topological-ids",
          "in-edge predecessor " + std::to_string(p) +
              " does not precede its successor in the id order",
          /*expected=*/v, /*actual=*/p, v));
    }
    if (p >= n) continue;  // topological-ids
    const int pred_level = layout.level(p);
    if (pred_level + 1 != level) {
      out.rank.add(error_counts(
          "cdag.rank-structure",
          "edge from " + std::to_string(p) + " (level " +
              std::to_string(pred_level) +
              ") does not connect consecutive levels",
          /*expected=*/static_cast<std::uint64_t>(pred_level + 1),
          /*actual=*/static_cast<std::uint64_t>(level), v));
    }

    // Fact-1 prefix discipline, per in-edge (see cdag_rules.cpp).
    const VertexRef pred = layout.ref(p);
    if (ref.layer != LayerKind::Dec) {
      if (pred.layer != ref.layer || pred.rank != ref.rank - 1) {
        out.fact1.add(error("cdag.fact1-prefix",
                            "encoding in-edge does not come from the "
                            "previous rank of the same side",
                            v));
      } else if (pred.q != ref.q / b ||
                 pred.p % pow_a(r - ref.rank) != ref.p) {
        out.fact1.add(error("cdag.fact1-prefix",
                            "encoding edge changes the recursion-path "
                            "prefix or block position (Fact 1)",
                            v));
      }
    } else if (ref.rank == 0) {
      if (pred.layer == LayerKind::Dec || pred.rank != r) {
        out.fact1.add(
            error("cdag.fact1-prefix",
                  "product in-edge does not come from encoding rank r", v));
      } else if (pred.q != ref.q) {
        out.fact1.add(error("cdag.fact1-prefix",
                            "multiplication edge joins different "
                            "recursion paths (Fact 1)",
                            v));
      }
    } else {
      if (pred.layer != LayerKind::Dec || pred.rank != ref.rank - 1) {
        out.fact1.add(error("cdag.fact1-prefix",
                            "decoding in-edge does not come from the "
                            "previous decoding rank",
                            v));
      } else if (pred.q / b != ref.q ||
                 pred.p != ref.p % pow_a(ref.rank - 1)) {
        out.fact1.add(error("cdag.fact1-prefix",
                            "decoding edge changes the recursion-path "
                            "prefix or block position (Fact 1)",
                            v));
      }
    }
  }
  // A product must multiply one operand from each side.
  if (ref.layer == LayerKind::Dec && ref.rank == 0 && preds.size() == 2 &&
      preds[0] < n && preds[1] < n) {
    const VertexRef p0 = layout.ref(preds[0]);
    const VertexRef p1 = layout.ref(preds[1]);
    if (p0.layer == p1.layer && p0.layer != LayerKind::Dec) {
      out.fact1.add(
          error("cdag.fact1-prefix",
                "product multiplies two operands from the same side", v));
    }
  }

  // Copy and meta bookkeeping (the per-vertex clauses; the membership
  // recount of cdag.meta-root needs O(n) arrays and is skipped with a
  // note by the caller).
  const VertexId parent = view.copy_parent(v);
  const VertexId root = view.meta_root(v);
  if (parent != kInvalidVertex) {
    if (parent >= n) {
      out.copy.add(
          error("cdag.copy-structure", "recorded copy-parent is not a vertex",
                v));
    } else {
      if (parent >= v) {
        out.copy.add(error_counts(
            "cdag.copy-structure",
            "copy-parent id must be smaller than the copy's",
            /*expected=*/v, /*actual=*/parent, v));
      }
      if (preds.size() != 1) {
        out.copy.add(error_counts("cdag.copy-structure",
                                  "copy vertex must have in-degree 1",
                                  /*expected=*/1, preds.size(), v));
      } else if (preds[0] != parent) {
        out.copy.add(error_counts(
            "cdag.copy-structure",
            "copy vertex's unique in-edge is not from its copy-parent",
            /*expected=*/parent, /*actual=*/preds[0], v));
      }
    }
  }
  if (root >= n) {
    out.meta_root.add(
        error("cdag.meta-root", "recorded meta-root is not a vertex", v));
    return;
  }
  if (root > v) {
    out.meta_root.add(error_counts("cdag.meta-root",
                                   "meta-root id must not exceed the member's",
                                   /*expected=*/v, /*actual=*/root, v));
  }
  if (view.meta_root(root) != root) {
    out.meta_root.add(error_counts(
        "cdag.meta-root", "recorded meta-root is not itself a root",
        /*expected=*/root, /*actual=*/view.meta_root(root), v));
  }
  if (!view.capabilities().grouped_duplicates && parent == kInvalidVertex &&
      root != v) {
    out.meta_root.add(error_counts(
        "cdag.meta-root",
        "non-copy vertex is not its own meta-root (same-value grouping "
        "is off)",
        /*expected=*/v, /*actual=*/root, v));
  }
  if (parent == kInvalidVertex) {
    // Lemma 2: the root of an upward subtree is its unique non-copy.
    if (root == v && view.copy_parent(root) != kInvalidVertex) {
      out.meta_subtree.add(error("cdag.meta-subtree",
                                 "meta-root is a copy vertex (Lemma 2 roots "
                                 "carry a non-copy definition)",
                                 v));
    }
  } else if (parent < n && view.meta_root(parent) != root) {
    out.meta_subtree.add(error_counts(
        "cdag.meta-subtree",
        "copy vertex does not inherit its copy-parent's meta-root, so "
        "the meta-vertex is not an upward subtree (Lemma 2)",
        /*expected=*/view.meta_root(parent), /*actual=*/root, v));
  }
}

constexpr std::string_view kViewConsistency = "cdag.view-consistency";
constexpr std::string_view kImplicitMatch = "routing.implicit-match";

void compare_count(Findings& out, const std::string& what,
                   std::uint64_t expected, std::uint64_t actual) {
  if (expected == actual) return;
  out.add(error_counts(
      kImplicitMatch,
      what + ": implicit engine disagrees with the array-backed result",
      expected, actual));
}

}  // namespace

AuditReport audit_cdag_view(const cdag::CdagView& view,
                            const RuleSelection& selection) {
  if (view.explicit_cdag() != nullptr) {
    // Whole-graph arrays exist: run the full (exhaustive, parallel)
    // suite instead of the sampled per-vertex subset.
    return audit_cdag(*view.explicit_cdag(), selection);
  }
  const std::uint64_t n = view.num_vertices();
  const std::uint64_t stride =
      n <= kViewSampleCap ? 1 : (n + kViewSampleCap - 1) / kViewSampleCap;
  ViewRuleFindings findings;
  std::vector<VertexId> in_scratch;
  std::vector<VertexId> out_scratch;
  for (std::uint64_t v = 0; v < n; v += stride) {
    check_view_vertex(view, static_cast<VertexId>(v), in_scratch, out_scratch,
                      findings);
  }
  AuditReport report;
  flush(report, selection, "cdag.topological-ids", std::move(findings.topo));
  flush(report, selection, "cdag.rank-structure", std::move(findings.rank));
  flush(report, selection, "cdag.degree-bounds", std::move(findings.degree));
  flush(report, selection, "cdag.copy-structure", std::move(findings.copy));
  flush(report, selection, "cdag.meta-root", std::move(findings.meta_root));
  flush(report, selection, "cdag.meta-subtree",
        std::move(findings.meta_subtree));
  flush(report, selection, "cdag.fact1-prefix", std::move(findings.fact1));
  if (selection.enabled("cdag.meta-root")) {
    Diagnostic note;
    note.rule = "cdag.meta-root";
    note.severity = Severity::kNote;
    note.message =
        "membership recount skipped: the view lacks the explicit_edges "
        "capability (the recount needs O(n) meta arrays)";
    report.add(note);
  }
  if (stride > 1 && selection.enabled("cdag.topological-ids")) {
    Diagnostic note;
    note.rule = "cdag.topological-ids";
    note.severity = Severity::kNote;
    note.message = "implicit view: per-vertex rules evaluated on a "
                   "deterministic stride sample of " +
                   std::to_string((n + stride - 1) / stride) + " of " +
                   std::to_string(n) + " vertices";
    report.add(note);
  }
  return report;
}

AuditReport audit_view_consistency(const cdag::CdagView& view,
                                   const cdag::Cdag& reference,
                                   const RuleSelection& selection) {
  AuditReport report;
  Findings preamble;
  const cdag::Graph& graph = reference.graph();
  const std::uint64_t n = graph.num_vertices();
  bool comparable = true;
  if (view.num_vertices() != n) {
    preamble.add(error_counts(kViewConsistency,
                              "view and reference disagree on the vertex "
                              "count; skipping the per-vertex comparison",
                              /*expected=*/n, /*actual=*/view.num_vertices()));
    comparable = false;
  }
  if (view.layout().a() != reference.layout().a() ||
      view.layout().b() != reference.layout().b() ||
      view.layout().r() != reference.layout().r()) {
    preamble.add(error(kViewConsistency,
                       "view and reference disagree on the layout "
                       "parameters (a, b, r); skipping the per-vertex "
                       "comparison"));
    comparable = false;
  }
  if (!comparable) {
    flush(report, selection, kViewConsistency, std::move(preamble));
    return report;
  }
  if (view.num_edges() != graph.num_edges()) {
    preamble.add(error_counts(kViewConsistency,
                              "view and reference disagree on the edge count",
                              /*expected=*/graph.num_edges(),
                              /*actual=*/view.num_edges()));
  }
  Findings scan = parallel::parallel_reduce<Findings>(
      0, n, kScanGrain, Findings{},
      [&](std::uint64_t lo, std::uint64_t hi) {
        Findings chunk;
        std::vector<VertexId> in_scratch;
        std::vector<VertexId> out_scratch;
        for (std::uint64_t i = lo; i < hi; ++i) {
          const auto v = static_cast<VertexId>(i);
          const std::uint32_t din = graph.in_degree(v);
          if (view.in_degree(v) != din) {
            chunk.add(error_counts(kViewConsistency,
                                   "in_degree differs from the explicit CSR",
                                   /*expected=*/din,
                                   /*actual=*/view.in_degree(v), v));
          } else {
            const auto want = graph.in(v);
            const auto got = view.in(v, in_scratch);
            for (std::size_t j = 0; j < want.size(); ++j) {
              if (got[j] != want[j]) {
                chunk.add(error_counts(
                    kViewConsistency,
                    "in-list entry differs from the explicit CSR",
                    /*expected=*/want[j], /*actual=*/got[j], v,
                    graph.in_edge_base(v) + j));
                break;
              }
            }
          }
          const std::uint32_t dout = graph.out_degree(v);
          if (view.out_degree(v) != dout) {
            chunk.add(error_counts(kViewConsistency,
                                   "out_degree differs from the explicit CSR",
                                   /*expected=*/dout,
                                   /*actual=*/view.out_degree(v), v));
          } else {
            const auto want = graph.out(v);
            const auto got = view.out(v, out_scratch);
            for (std::size_t j = 0; j < want.size(); ++j) {
              if (got[j] != want[j]) {
                chunk.add(error_counts(
                    kViewConsistency,
                    "out-list entry differs from the explicit CSR",
                    /*expected=*/want[j], /*actual=*/got[j], v));
                break;
              }
            }
          }
          if (view.copy_parent(v) != reference.copy_parent(v)) {
            chunk.add(error_counts(
                kViewConsistency, "copy-parent differs from the reference",
                /*expected=*/reference.copy_parent(v),
                /*actual=*/view.copy_parent(v), v));
          }
          if (view.meta_root(v) != reference.meta_root(v)) {
            chunk.add(error_counts(
                kViewConsistency, "meta-root differs from the reference",
                /*expected=*/reference.meta_root(v),
                /*actual=*/view.meta_root(v), v));
          }
          if (view.meta_size(v) != reference.meta_size(v)) {
            chunk.add(error_counts(
                kViewConsistency, "meta-size differs from the reference",
                /*expected=*/reference.meta_size(v),
                /*actual=*/view.meta_size(v), v));
          }
        }
        return chunk;
      },
      [](Findings& acc, Findings& chunk) { acc.merge(chunk); });
  preamble.merge(scan);
  flush(report, selection, kViewConsistency, std::move(preamble));
  return report;
}

AuditReport audit_implicit_routing(const routing::MemoRoutingEngine& engine,
                                   const cdag::SubComputation& sub,
                                   const RuleSelection& selection) {
  Findings findings;
  const cdag::ExplicitView view(sub.cdag());
  const int k = sub.k();
  const std::uint64_t prefix = sub.prefix();

  {
    const routing::HitStats want = engine.verify_chain_routing(sub);
    const routing::HitStats got = engine.verify_chain_routing(view, k, prefix);
    compare_count(findings, "chain num_paths", want.num_paths, got.num_paths);
    compare_count(findings, "chain max_hits", want.max_hits, got.max_hits);
    compare_count(findings, "chain bound", want.bound, got.bound);
    compare_count(findings, "chain argmax", want.argmax, got.argmax);
  }
  {
    const bool want = engine.verify_chain_multiplicities(sub);
    const bool got = engine.verify_chain_multiplicities(view, k, prefix);
    compare_count(findings, "Lemma-4 multiplicity verdict", want ? 1 : 0,
                  got ? 1 : 0);
  }
  {
    const routing::FullRoutingStats want = engine.verify_full_routing(sub);
    const routing::FullRoutingStats got =
        engine.verify_full_routing(view, k, prefix);
    compare_count(findings, "Theorem-2 num_paths", want.num_paths,
                  got.num_paths);
    compare_count(findings, "Theorem-2 max_vertex_hits", want.max_vertex_hits,
                  got.max_vertex_hits);
    compare_count(findings, "Theorem-2 argmax_vertex", want.argmax_vertex,
                  got.argmax_vertex);
    compare_count(findings, "Theorem-2 max_meta_hits", want.max_meta_hits,
                  got.max_meta_hits);
    compare_count(findings, "Theorem-2 bound", want.bound, got.bound);
    compare_count(findings, "Theorem-2 root_hit_property",
                  want.root_hit_property ? 1 : 0,
                  got.root_hit_property ? 1 : 0);
  }
  if (engine.has_decoder()) {
    const routing::HitStats want = engine.verify_decode_routing(sub);
    const routing::HitStats got =
        engine.verify_decode_routing(view, k, prefix);
    compare_count(findings, "decode num_paths", want.num_paths, got.num_paths);
    compare_count(findings, "decode max_hits", want.max_hits, got.max_hits);
    compare_count(findings, "decode bound", want.bound, got.bound);
    compare_count(findings, "decode argmax", want.argmax, got.argmax);
  }

  AuditReport report;
  flush(report, selection, kImplicitMatch, std::move(findings));
  return report;
}

}  // namespace pathrouting::audit
