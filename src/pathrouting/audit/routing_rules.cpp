// The routing.*, hall.*, and family.* rule suites: validity of routed
// path families (Lemma 3, Lemma 4 / Theorem 2, Claim 1), Hall matching
// witnesses (Theorem 3), and input-disjoint subcomputation families
// (Lemma 1).
#include <algorithm>
#include <string>
#include <vector>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/audit/internal.hpp"
#include "pathrouting/routing/concat_routing.hpp"
#include "pathrouting/routing/guaranteed.hpp"
#include "pathrouting/support/parallel.hpp"

namespace pathrouting::audit {

namespace {

namespace parallel = support::parallel;
using bilinear::Side;
using cdag::Graph;
using cdag::Layout;
using cdag::SubComputation;
using internal::error;
using internal::error_counts;
using internal::Findings;
using internal::flush;

constexpr std::string_view kEdges = "routing.path-edges";
constexpr std::string_view kEndpoints = "routing.path-endpoints";
constexpr std::string_view kLength = "routing.path-length";
constexpr std::string_view kCongestion = "routing.congestion";
constexpr std::string_view kDisjoint = "routing.path-disjoint";
constexpr std::string_view kChainCount = "routing.chain-count";
constexpr std::string_view kMemoTotals = "routing.memo-totals";
constexpr std::string_view kCopyBlocks = "fact1.copy-blocks";
constexpr std::string_view kCopyBijection = "fact1.copy-bijection";

std::string pair_str(std::uint64_t u, std::uint64_t v) {
  return "(" + std::to_string(u) + " -> " + std::to_string(v) + ")";
}

/// Checks one materialized path: consecutive-vertex edges, declared
/// terminals, and expected length. Shared by the explicit-family audit
/// and the streaming routing audits. `label` names the path in
/// messages ("path 3", "chain (A, 5 -> 2)", ...).
struct PathExpectations {
  const Graph* graph = nullptr;
  bool undirected = false;
  std::uint64_t expected_length = 0;  // 0 = skip
  VertexId source = cdag::kInvalidVertex;
  VertexId sink = cdag::kInvalidVertex;
};

void check_path(std::span<const VertexId> path, const PathExpectations& x,
                const std::string& label, Findings& edges, Findings& endpoints,
                Findings& length) {
  const Graph& graph = *x.graph;
  const std::uint64_t n = graph.num_vertices();
  if (path.empty()) {
    endpoints.add(error(kEndpoints, label + " is empty"));
    return;
  }
  for (std::size_t j = 0; j + 1 < path.size(); ++j) {
    const VertexId u = path[j];
    const VertexId v = path[j + 1];
    if (u >= n || v >= n) {
      edges.add(error(kEdges, label + ": hop " + pair_str(u, v) +
                                  " leaves the vertex range",
                      u < n ? u : v));
      continue;
    }
    const bool ok = graph.has_edge(u, v) ||
                    (x.undirected && graph.has_edge(v, u));
    if (!ok) {
      edges.add(error(kEdges,
                      label + ": hop " + pair_str(u, v) + " is not an edge" +
                          (x.undirected ? " in either direction" : ""),
                      u));
    }
  }
  if (x.source != cdag::kInvalidVertex && path.front() != x.source) {
    endpoints.add(error_counts(kEndpoints,
                               label + " does not start at its declared "
                                       "source",
                               x.source, path.front(), path.front()));
  }
  if (x.sink != cdag::kInvalidVertex && path.back() != x.sink) {
    endpoints.add(error_counts(kEndpoints,
                               label + " does not end at its declared sink",
                               x.sink, path.back(), path.back()));
  }
  if (x.expected_length != 0 && path.size() != x.expected_length) {
    length.add(error_counts(kLength, label + " has the wrong vertex count",
                            x.expected_length, path.size(), path.front()));
  }
}

/// Serial scan of a merged per-vertex hit array against a congestion
/// bound; findings in vertex-id order, capped.
void congestion_findings(const std::vector<std::uint64_t>& hits,
                         std::uint64_t bound, const std::string& what,
                         Findings& out) {
  for (std::uint64_t v = 0; v < hits.size(); ++v) {
    if (hits[v] > bound) {
      out.add(error_counts(kCongestion,
                           what + " congestion exceeds the routing bound",
                           bound, hits[v], v));
    }
  }
}

/// Per-vertex hit counts of a streamed path enumeration:
/// enumerate(index, path_out) materializes the paths of one stream
/// index; all workers bump one shared counter array (relaxed atomic
/// adds, exactly commutative), so the counts are thread-count
/// independent and the working set does not grow with PR_THREADS.
template <typename Enumerate>
std::vector<std::uint64_t> streamed_hits(std::uint64_t num_indices,
                                         std::uint64_t grain, std::uint64_t n,
                                         const Enumerate& enumerate) {
  parallel::HitCounter hits(n);
  parallel::parallel_for(
      0, num_indices, grain, [&](std::uint64_t lo, std::uint64_t hi) {
        std::vector<VertexId> path;
        for (std::uint64_t idx = lo; idx < hi; ++idx) {
          enumerate(idx, [&](std::span<const VertexId> p) {
            for (const VertexId v : p) {
              if (v < n) hits.add(v);
            }
          }, path);
        }
      });
  return hits.take();
}

}  // namespace

AuditReport audit_path_family(const CdagView& view, const PathFamily& family,
                              const RuleSelection& selection) {
  PR_REQUIRE_MSG(view.graph != nullptr, "audit_path_family: view has no graph");
  PR_REQUIRE_MSG(!family.offsets.empty(),
                 "audit_path_family: offsets must have |paths|+1 entries");
  for (std::size_t i = 0; i + 1 < family.offsets.size(); ++i) {
    PR_REQUIRE_MSG(family.offsets[i] <= family.offsets[i + 1],
                   "audit_path_family: offsets must be non-decreasing");
  }
  PR_REQUIRE_MSG(family.offsets.back() == family.vertices.size(),
                 "audit_path_family: offsets must cover the vertex array");
  const Graph& graph = *view.graph;
  const std::uint64_t num_paths = family.offsets.size() - 1;
  const std::uint64_t n = graph.num_vertices();
  AuditReport report;

  // Structural per-path checks, folded in chunk order.
  struct Chunk {
    Findings edges, endpoints, length;
  };
  Chunk structural = parallel::parallel_reduce<Chunk>(
      0, num_paths, /*grain=*/64, Chunk{},
      [&](std::uint64_t lo, std::uint64_t hi) {
        Chunk chunk;
        for (std::uint64_t i = lo; i < hi; ++i) {
          const std::span<const VertexId> path = family.vertices.subspan(
              family.offsets[i], family.offsets[i + 1] - family.offsets[i]);
          PathExpectations x;
          x.graph = &graph;
          x.undirected = family.undirected;
          x.expected_length = family.expected_length;
          if (family.sources.size() == num_paths) x.source = family.sources[i];
          if (family.sinks.size() == num_paths) x.sink = family.sinks[i];
          check_path(path, x, "path " + std::to_string(i), chunk.edges,
                     chunk.endpoints, chunk.length);
        }
        return chunk;
      },
      [](Chunk& acc, Chunk& chunk) {
        acc.edges.merge(chunk.edges);
        acc.endpoints.merge(chunk.endpoints);
        acc.length.merge(chunk.length);
      });
  flush(report, selection, kEdges, std::move(structural.edges));
  flush(report, selection, kEndpoints, std::move(structural.endpoints));
  if (family.expected_length != 0) {
    flush(report, selection, kLength, std::move(structural.length));
  }

  if (family.congestion_bound != 0 && selection.enabled(kCongestion)) {
    const std::uint64_t avg_len =
        num_paths == 0 ? 1 : family.vertices.size() / num_paths + 1;
    const std::vector<std::uint64_t> hits = streamed_hits(
        num_paths, parallel::work_grain(num_paths, avg_len), n,
        [&](std::uint64_t i, const auto& sink, std::vector<VertexId>&) {
          sink(family.vertices.subspan(
              family.offsets[i], family.offsets[i + 1] - family.offsets[i]));
        });
    Findings findings;
    congestion_findings(hits, family.congestion_bound, "vertex", findings);
    flush(report, selection, kCongestion, std::move(findings));
  }

  if (family.vertex_disjoint && selection.enabled(kDisjoint)) {
    // Serial owner scan in path order: the reported pair is always the
    // lexicographically first collision.
    Findings findings;
    std::vector<std::uint64_t> owner(n, kNoId);
    for (std::uint64_t i = 0; i < num_paths; ++i) {
      for (std::uint64_t j = family.offsets[i]; j < family.offsets[i + 1];
           ++j) {
        const VertexId v = family.vertices[j];
        if (v >= n) continue;  // path-edges
        if (owner[v] == kNoId) {
          owner[v] = i;
        } else if (owner[v] != i) {
          findings.add(error(
              kDisjoint,
              "vertex is shared by paths " + std::to_string(owner[v]) +
                  " and " + std::to_string(i) +
                  " of a family declared vertex-disjoint",
              v));
        }
      }
    }
    flush(report, selection, kDisjoint, std::move(findings));
  }

  if (family.expected_paths != 0 && selection.enabled(kChainCount)) {
    Findings findings;
    if (num_paths != family.expected_paths) {
      findings.add(error_counts(kChainCount,
                                "family does not contain the expected "
                                "number of paths",
                                family.expected_paths, num_paths));
    }
    flush(report, selection, kChainCount, std::move(findings));
  }
  return report;
}

PathFamily family_view(const routing::PathStore& store) {
  PathFamily family;
  family.offsets = store.offsets();
  family.vertices = store.vertices();
  family.sources = store.sources();
  family.sinks = store.sinks();
  return family;
}

AuditReport audit_copy_translation(const Layout& global, int k,
                                   std::uint64_t prefix,
                                   std::span<const cdag::CopyBlock> blocks,
                                   const RuleSelection& selection) {
  PR_REQUIRE_MSG(k >= 1 && k <= global.r(),
                 "audit_copy_translation: k outside 1..r");
  PR_REQUIRE_MSG(prefix < global.pow_b()(global.r() - k),
                 "audit_copy_translation: prefix is not a copy index");
  const Layout local(global.n0(), global.b(), k);
  AuditReport report;
  Findings structure, bijection;

  // The reference runs: one per canonical rank, in (common) id order,
  // with the global bases given by the Fact-1 address formulas.
  struct Run {
    VertexId local_base, global_base;
    std::uint64_t length;
  };
  std::vector<Run> expected;
  for (const Side side : {Side::A, Side::B}) {
    for (int t = 0; t <= k; ++t) {
      expected.push_back(
          {local.enc(side, t, 0, 0),
           global.enc(side, global.r() - k + t, prefix * global.pow_b()(t), 0),
           local.enc_rank_size(t)});
    }
  }
  for (int t = 0; t <= k; ++t) {
    expected.push_back({local.dec(t, 0, 0),
                        global.dec(t, prefix * global.pow_b()(k - t), 0),
                        local.dec_rank_size(t)});
  }

  if (blocks.size() != expected.size()) {
    structure.add(error_counts(kCopyBlocks,
                               "renaming does not have one block per "
                               "canonical G_k rank (3(k+1) runs)",
                               expected.size(), blocks.size()));
  }
  VertexId next_local = 0;
  std::uint64_t covered = 0;
  std::uint64_t prev_global_end = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const cdag::CopyBlock& blk = blocks[i];
    if (blk.local_base != next_local) {
      structure.add(error_counts(kCopyBlocks,
                                 "block does not start where the previous "
                                 "one ended (local ids must tile G_k)",
                                 next_local, blk.local_base, i));
    }
    if (i < expected.size() && blk.length != expected[i].length) {
      structure.add(error_counts(kCopyBlocks,
                                 "block length differs from its rank size",
                                 expected[i].length, blk.length, i));
    }
    next_local = blk.local_base + static_cast<VertexId>(blk.length);
    covered += blk.length;

    if (blk.global_base + blk.length > global.num_vertices()) {
      bijection.add(error_counts(kCopyBijection,
                                 "block run leaves the global vertex range",
                                 global.num_vertices(),
                                 blk.global_base + blk.length, i));
    }
    if (i > 0 && blk.global_base < prev_global_end) {
      bijection.add(error_counts(kCopyBijection,
                                 "block overlaps or reorders the previous "
                                 "global run (the renaming is strictly "
                                 "increasing)",
                                 prev_global_end, blk.global_base, i));
    }
    prev_global_end = blk.global_base + blk.length;
    if (i < expected.size() && blk.global_base != expected[i].global_base) {
      bijection.add(error_counts(kCopyBijection,
                                 "block base disagrees with the Fact-1 "
                                 "address formulas",
                                 expected[i].global_base, blk.global_base, i));
    }
  }
  if (covered != local.num_vertices()) {
    structure.add(error_counts(kCopyBlocks,
                               "blocks do not cover the canonical G_k "
                               "exactly",
                               local.num_vertices(), covered));
  }
  flush(report, selection, kCopyBlocks, std::move(structure));
  flush(report, selection, kCopyBijection, std::move(bijection));
  return report;
}

AuditReport audit_memo_chain_counts(const routing::MemoRoutingEngine& engine,
                                    const SubComputation& sub,
                                    const routing::ChainHitCounts& counts,
                                    const RuleSelection& selection) {
  const Layout& layout = sub.cdag().layout();
  const int k = sub.k();
  AuditReport report;
  Findings totals;
  if (counts.num_chains != engine.expected_num_chains(k)) {
    totals.add(error_counts(kMemoTotals,
                            "chain count disagrees with 2*a^k*n0^k "
                            "(one chain per guaranteed dependence)",
                            engine.expected_num_chains(k), counts.num_chains));
  }
  std::uint64_t total = 0, max_hits = 0;
  VertexId argmax = 0;
  for (VertexId v = 0; v < counts.hits.size(); ++v) {
    total += counts.hits[v];
    if (counts.hits[v] > max_hits) {
      max_hits = counts.hits[v];
      argmax = v;
    }
  }
  if (total != engine.expected_chain_total_hits(k)) {
    totals.add(error_counts(kMemoTotals,
                            "hit-array total disagrees with the certificate "
                            "num_chains * (2k+2) (chains have 2k+2 distinct "
                            "vertices)",
                            engine.expected_chain_total_hits(k), total));
  }
  if (max_hits != counts.max_hits || argmax != counts.argmax) {
    totals.add(error_counts(kMemoTotals,
                            "recorded max hits / argmax disagree with the "
                            "array (smallest-id tie-break)",
                            max_hits, counts.max_hits, argmax));
  }
  flush(report, selection, kMemoTotals, std::move(totals));

  if (selection.enabled(kCongestion)) {
    Findings findings;
    congestion_findings(counts.hits,
                        2 * routing::guaranteed_fanout(layout, k),
                        "memoized chain-routing vertex", findings);
    flush(report, selection, kCongestion, std::move(findings));
  }
  return report;
}

AuditReport audit_memo_routing(const routing::MemoRoutingEngine& engine,
                               const SubComputation& sub,
                               const RuleSelection& selection) {
  const Layout& layout = sub.cdag().layout();
  const int k = sub.k();
  const cdag::CopyTranslation map(layout, k, sub.prefix());
  AuditReport report =
      audit_copy_translation(layout, k, sub.prefix(), map.blocks(), selection);
  report.merge(
      audit_memo_chain_counts(engine, sub, engine.chain_hits(sub), selection));

  if (engine.has_decoder()) {
    const std::vector<std::uint64_t> hits = engine.decode_hits(sub);
    Findings totals;
    std::uint64_t total = 0;
    for (const std::uint64_t h : hits) total += h;
    if (total != engine.expected_decode_total_hits(k)) {
      totals.add(error_counts(kMemoTotals,
                              "decode hit-array total disagrees with the "
                              "Claim-1 certificate b^k*a^k + "
                              "k*b^(k-1)*a^(k-1)*(D_1 visit totals)",
                              engine.expected_decode_total_hits(k), total));
    }
    flush(report, selection, kMemoTotals, std::move(totals));
    if (selection.enabled(kCongestion)) {
      Findings findings;
      congestion_findings(hits, engine.verify_decode_routing(sub).bound,
                          "memoized decode-routing vertex", findings);
      flush(report, selection, kCongestion, std::move(findings));
    }
  }
  return report;
}

AuditReport audit_chain_routing(const routing::ChainRouter& router,
                                const SubComputation& sub,
                                const RuleSelection& selection) {
  const cdag::Cdag& owner = sub.cdag();
  const Layout& layout = owner.layout();
  const Graph& graph = owner.graph();
  const int k = sub.k();
  const std::uint64_t num_in = sub.inputs_per_side();
  const std::uint64_t fanout = routing::guaranteed_fanout(layout, k);  // n0^k
  const auto expected_length = static_cast<std::uint64_t>(2 * k + 2);
  const std::uint64_t bound = 2 * fanout;  // Lemma 3
  AuditReport report;

  const bool structural =
      selection.enabled(kEdges) || selection.enabled(kEndpoints) ||
      selection.enabled(kLength) || selection.enabled(kChainCount);
  if (structural) {
    struct Chunk {
      Findings edges, endpoints, length, count;
    };
    Chunk chunked = parallel::parallel_reduce<Chunk>(
        0, 2 * num_in, /*grain=*/8, Chunk{},
        [&](std::uint64_t lo, std::uint64_t hi) {
          Chunk chunk;
          std::vector<VertexId> chain;
          for (std::uint64_t idx = lo; idx < hi; ++idx) {
            const Side side = idx < num_in ? Side::A : Side::B;
            const std::uint64_t vpos = idx < num_in ? idx : idx - num_in;
            for (std::uint64_t free = 0; free < fanout; ++free) {
              const std::uint64_t wpos =
                  routing::guaranteed_output(layout, k, side, vpos, free);
              if (!routing::is_guaranteed_dep(layout, k, side, vpos, wpos)) {
                chunk.count.add(error(
                    kChainCount,
                    "enumerated pair (side " +
                        std::string(side == Side::A ? "A" : "B") + ", " +
                        std::to_string(vpos) + " -> " + std::to_string(wpos) +
                        ") is not a guaranteed dependence",
                    sub.input(side, vpos)));
                continue;
              }
              chain.clear();
              router.append_chain(sub, side, vpos, wpos, chain);
              PathExpectations x;
              x.graph = &graph;
              x.expected_length = expected_length;
              x.source = sub.input(side, vpos);
              x.sink = sub.output(wpos);
              check_path(chain, x,
                         "chain (" + std::string(side == Side::A ? "A" : "B") +
                             ", " + std::to_string(vpos) + " -> " +
                             std::to_string(wpos) + ")",
                         chunk.edges, chunk.endpoints, chunk.length);
            }
          }
          return chunk;
        },
        [](Chunk& acc, Chunk& chunk) {
          acc.edges.merge(chunk.edges);
          acc.endpoints.merge(chunk.endpoints);
          acc.length.merge(chunk.length);
          acc.count.merge(chunk.count);
        });
    flush(report, selection, kEdges, std::move(chunked.edges));
    flush(report, selection, kEndpoints, std::move(chunked.endpoints));
    flush(report, selection, kLength, std::move(chunked.length));
    // Lemma 3 routes one chain per guaranteed dependence: 2 a^k n0^k.
    Findings count = std::move(chunked.count);
    const std::uint64_t num_chains = 2 * num_in * fanout;
    const std::uint64_t expected_chains = 2 * layout.pow_a()(k) * fanout;
    if (num_chains != expected_chains) {
      count.add(error_counts(kChainCount,
                             "chain enumeration does not cover all "
                             "guaranteed dependencies",
                             expected_chains, num_chains));
    }
    flush(report, selection, kChainCount, std::move(count));
  }

  if (selection.enabled(kCongestion)) {
    const routing::ChainHitCounts counts =
        routing::count_chain_hits(router, sub);
    Findings findings;
    congestion_findings(counts.hits, bound, "chain-routing vertex", findings);
    flush(report, selection, kCongestion, std::move(findings));
  }
  return report;
}

AuditReport audit_concat_routing(const routing::ChainRouter& router,
                                 const SubComputation& sub,
                                 const RuleSelection& selection) {
  const cdag::Cdag& owner = sub.cdag();
  const Layout& layout = owner.layout();
  const Graph& graph = owner.graph();
  const std::uint64_t n = graph.num_vertices();
  const int k = sub.k();
  const std::uint64_t num_in = sub.inputs_per_side();
  const std::uint64_t bound = 6 * layout.pow_a()(k);  // Theorem 2
  const auto expected_length = static_cast<std::uint64_t>(6 * k + 4);
  // Theorem 2's meta accounting is per subcomputation: restricted to
  // G_k^i, a meta-vertex is the upward subtree hanging off its unique
  // member at the sub's input rank (the copy-parent chain of any deeper
  // member descends to it). Global meta roots can live below the sub
  // when k < r, so grouping climbs copy edges only down to the sub's
  // boundary level.
  const int boundary_level = layout.r() - k;
  const auto local_root = [&](VertexId v) {
    while (owner.copy_parent(v) != cdag::kInvalidVertex &&
           layout.level(v) > boundary_level) {
      v = owner.copy_parent(v);
    }
    return v;
  };
  AuditReport report;

  const auto for_pair_paths = [&](std::uint64_t idx, const auto& body) {
    const Side in_side = idx < num_in ? Side::A : Side::B;
    const std::uint64_t vpos = idx < num_in ? idx : idx - num_in;
    std::vector<VertexId> path;
    for (std::uint64_t wpos = 0; wpos < num_in; ++wpos) {
      path.clear();
      routing::append_full_path(router, sub, in_side, vpos, wpos, path);
      body(in_side, vpos, wpos, std::span<const VertexId>(path));
    }
  };

  const bool structural = selection.enabled(kEdges) ||
                          selection.enabled(kEndpoints) ||
                          selection.enabled(kLength) ||
                          selection.enabled(kCongestion);
  if (structural) {
    struct Chunk {
      Findings edges, endpoints, length, roots;
    };
    Chunk chunked = parallel::parallel_reduce<Chunk>(
        0, 2 * num_in, /*grain=*/4, Chunk{},
        [&](std::uint64_t lo, std::uint64_t hi) {
          Chunk chunk;
          for (std::uint64_t idx = lo; idx < hi; ++idx) {
            for_pair_paths(idx, [&](Side in_side, std::uint64_t vpos,
                                    std::uint64_t wpos,
                                    std::span<const VertexId> path) {
              const std::string label =
                  "full path (" + std::string(in_side == Side::A ? "A" : "B") +
                  ", " + std::to_string(vpos) + " -> " + std::to_string(wpos) +
                  ")";
              PathExpectations x;
              x.graph = &graph;
              x.undirected = true;  // middle chain traversed in reverse
              x.expected_length = expected_length;
              x.source = sub.input(in_side, vpos);
              x.sink = sub.output(wpos);
              check_path(path, x, label, chunk.edges, chunk.endpoints,
                         chunk.length);
              // Theorem 2 extends the bound to meta-vertices because a
              // path hitting a copy also passes its copy parent (the
              // only way in or out below rank r): hitting any member of
              // a sub-local meta subtree implies hitting its root.
              for (const VertexId v : path) {
                if (v >= n) continue;
                const VertexId parent = owner.copy_parent(v);
                if (parent == cdag::kInvalidVertex ||
                    layout.level(v) <= boundary_level) {
                  continue;
                }
                if (std::find(path.begin(), path.end(), parent) ==
                    path.end()) {
                  chunk.roots.add(
                      error(kCongestion,
                            label + " passes a copy vertex without its copy "
                                    "parent (Theorem 2 meta accounting)",
                            v));
                }
              }
            });
          }
          return chunk;
        },
        [](Chunk& acc, Chunk& chunk) {
          acc.edges.merge(chunk.edges);
          acc.endpoints.merge(chunk.endpoints);
          acc.length.merge(chunk.length);
          acc.roots.merge(chunk.roots);
        });
    flush(report, selection, kEdges, std::move(chunked.edges));
    flush(report, selection, kEndpoints, std::move(chunked.endpoints));
    flush(report, selection, kLength, std::move(chunked.length));

    if (selection.enabled(kCongestion)) {
      // Vertex-level hits, plus per-path-deduplicated meta-vertex hits;
      // both in shared counter arrays (relaxed atomic adds).
      parallel::HitCounter vertex_hits(n);
      parallel::HitCounter meta_hits(n);
      const std::uint64_t grain = parallel::work_grain(
          2 * num_in,
          /*per_item_cost=*/num_in * static_cast<std::uint64_t>(6 * k + 4));
      parallel::parallel_for(
          0, 2 * num_in, grain, [&](std::uint64_t lo, std::uint64_t hi) {
            std::vector<VertexId> roots_on_path;
            for (std::uint64_t idx = lo; idx < hi; ++idx) {
              for_pair_paths(idx, [&](Side, std::uint64_t, std::uint64_t,
                                      std::span<const VertexId> path) {
                roots_on_path.clear();
                for (const VertexId v : path) {
                  if (v >= n) continue;
                  vertex_hits.add(v);
                  const VertexId root = local_root(v);
                  if (std::find(roots_on_path.begin(), roots_on_path.end(),
                                root) == roots_on_path.end()) {
                    roots_on_path.push_back(root);
                    meta_hits.add(root);
                  }
                }
              });
            }
          });
      Findings findings = std::move(chunked.roots);
      congestion_findings(vertex_hits.take(), bound, "full-routing vertex",
                          findings);
      congestion_findings(meta_hits.take(), bound, "full-routing meta-vertex",
                          findings);
      flush(report, selection, kCongestion, std::move(findings));
    }
  }
  return report;
}

AuditReport audit_decode_routing(const routing::DecodeRouter& router,
                                 const SubComputation& sub,
                                 const RuleSelection& selection) {
  const cdag::Cdag& owner = sub.cdag();
  const Layout& layout = owner.layout();
  const Graph& graph = owner.graph();
  const std::uint64_t n = graph.num_vertices();
  const int k = sub.k();
  const std::uint64_t num_q = sub.num_products();
  const std::uint64_t num_e = sub.inputs_per_side();
  const std::uint64_t bound =
      static_cast<std::uint64_t>(router.d1_size()) *
      std::max(layout.pow_a()(k), layout.pow_b()(k));  // Claim 1
  AuditReport report;

  const bool structural =
      selection.enabled(kEdges) || selection.enabled(kEndpoints);
  if (structural) {
    struct Chunk {
      Findings edges, endpoints, length;
    };
    Chunk chunked = parallel::parallel_reduce<Chunk>(
        0, num_q, /*grain=*/8, Chunk{},
        [&](std::uint64_t lo, std::uint64_t hi) {
          Chunk chunk;
          std::vector<VertexId> path;
          for (std::uint64_t q = lo; q < hi; ++q) {
            for (std::uint64_t e = 0; e < num_e; ++e) {
              path.clear();
              router.append_path(sub, q, e, path);
              PathExpectations x;
              x.graph = &graph;
              x.undirected = true;  // Claim 1 routes in the undirected D_k
              x.source = sub.dec(0, q, 0);
              x.sink = sub.output(e);
              check_path(path, x,
                         "decode path (" + std::to_string(q) + " -> " +
                             std::to_string(e) + ")",
                         chunk.edges, chunk.endpoints, chunk.length);
            }
          }
          return chunk;
        },
        [](Chunk& acc, Chunk& chunk) {
          acc.edges.merge(chunk.edges);
          acc.endpoints.merge(chunk.endpoints);
          acc.length.merge(chunk.length);
        });
    flush(report, selection, kEdges, std::move(chunked.edges));
    flush(report, selection, kEndpoints, std::move(chunked.endpoints));
  }

  if (selection.enabled(kCongestion)) {
    const std::uint64_t grain = parallel::work_grain(
        num_q,
        /*per_item_cost=*/num_e * static_cast<std::uint64_t>(2 * k + 2));
    const std::vector<std::uint64_t> hits = streamed_hits(
        num_q, grain, n,
        [&](std::uint64_t q, const auto& sink, std::vector<VertexId>& path) {
          for (std::uint64_t e = 0; e < num_e; ++e) {
            path.clear();
            router.append_path(sub, q, e, path);
            sink(std::span<const VertexId>(path));
          }
        });
    Findings findings;
    congestion_findings(hits, bound, "decode-routing vertex", findings);
    flush(report, selection, kCongestion, std::move(findings));
  }
  return report;
}

AuditReport audit_hall_matching(const bilinear::BilinearAlgorithm& alg,
                                Side side,
                                const routing::BaseMatching& matching,
                                const RuleSelection& selection) {
  const int n0 = alg.n0();
  const int a = alg.a();
  const int b = alg.b();
  AuditReport report;
  Findings domain, validity, capacity;
  std::vector<std::uint64_t> uses(static_cast<std::size_t>(b), 0);
  for (int d_in = 0; d_in < a; ++d_in) {
    for (int d_out = 0; d_out < a; ++d_out) {
      const auto flat = static_cast<std::uint64_t>(d_in * a + d_out);
      const bool guaranteed =
          routing::is_guaranteed_digit_pair(n0, side, d_in, d_out);
      const bool defined = matching.defined(d_in, d_out);
      if (guaranteed != defined) {
        domain.add(error(
            "hall.domain",
            std::string(defined ? "matched pair (" : "unmatched pair (") +
                std::to_string(d_in) + ", " + std::to_string(d_out) +
                (defined ? ") is not a guaranteed dependence"
                         : ") is a guaranteed dependence (Theorem 3 matches "
                           "all of them)"),
            flat));
      }
      if (!defined) continue;
      const int q = matching.product(d_in, d_out);
      if (q >= b) {
        validity.add(error_counts("hall.edge-validity",
                                  "matched product index is out of range",
                                  static_cast<std::uint64_t>(b - 1),
                                  static_cast<std::uint64_t>(q), flat));
        continue;
      }
      ++uses[static_cast<std::size_t>(q)];
      if (guaranteed && !routing::h_edge(alg, side, d_in, d_out, q)) {
        validity.add(error(
            "hall.edge-validity",
            "pair (" + std::to_string(d_in) + ", " + std::to_string(d_out) +
                ") is matched to product " + std::to_string(q) +
                " but is not adjacent to it in H (needs U[q,d_in] != 0 "
                "and W[d_out,q] != 0)",
            flat));
      }
    }
  }
  for (int q = 0; q < b; ++q) {
    if (uses[static_cast<std::size_t>(q)] > static_cast<std::uint64_t>(n0)) {
      capacity.add(error_counts(
          "hall.capacity",
          "product is matched more than n0 times (Theorem 3 capacity)",
          static_cast<std::uint64_t>(n0), uses[static_cast<std::size_t>(q)],
          static_cast<std::uint64_t>(q)));
    }
  }
  flush(report, selection, "hall.domain", std::move(domain));
  flush(report, selection, "hall.edge-validity", std::move(validity));
  flush(report, selection, "hall.capacity", std::move(capacity));
  return report;
}

AuditReport audit_disjoint_family(const cdag::Cdag& cdag,
                                  const bounds::DisjointFamily& family,
                                  const RuleSelection& selection) {
  const Layout& layout = cdag.layout();
  const int r = layout.r();
  AuditReport report;

  Findings size;
  const bool k_valid = family.k >= 0 && family.k <= r - 2;
  if (!k_valid) {
    size.add(error_counts("family.size",
                          "family order k outside 0..r-2 (Lemma 1 needs two "
                          "recursion levels above the members)",
                          static_cast<std::uint64_t>(r >= 2 ? r - 2 : 0),
                          static_cast<std::uint64_t>(family.k)));
  } else {
    const std::uint64_t guaranteed = layout.pow_b()(r - family.k - 2);
    if (family.guaranteed != guaranteed) {
      size.add(error_counts("family.size",
                            "recorded guarantee is not b^(r-k-2) (Lemma 1)",
                            guaranteed, family.guaranteed));
    }
    if (family.prefixes.size() < guaranteed) {
      size.add(error_counts(
          "family.size",
          "family is smaller than Lemma 1's guaranteed b^(r-k-2)", guaranteed,
          family.prefixes.size()));
    }
  }
  flush(report, selection, "family.size", std::move(size));

  Findings disjoint;
  if (k_valid && selection.enabled("family.input-disjoint")) {
    const std::uint64_t num_subs = layout.pow_b()(r - family.k);
    std::vector<std::uint64_t> owner(cdag.graph().num_vertices(), kNoId);
    for (const std::uint64_t prefix : family.prefixes) {
      if (prefix >= num_subs) {
        disjoint.add(error_counts("family.input-disjoint",
                                  "family prefix is not a subcomputation "
                                  "index (expected < b^(r-k))",
                                  num_subs - 1, prefix));
        continue;
      }
      const SubComputation sub(cdag, family.k, prefix);
      for (const VertexId root : sub.input_meta_roots()) {
        if (owner[root] == kNoId) {
          owner[root] = prefix;
        } else if (owner[root] != prefix) {
          disjoint.add(error(
              "family.input-disjoint",
              "subcomputations " + std::to_string(owner[root]) + " and " +
                  std::to_string(prefix) +
                  " share an input meta-vertex (Lemma 1 requires mutual "
                  "input-disjointness)",
              root));
        }
      }
    }
  }
  flush(report, selection, "family.input-disjoint", std::move(disjoint));
  return report;
}

}  // namespace pathrouting::audit
