// The cert.* and schedule.* rule suites: reconciliation of segment
// certificates (Sections 5 and 6) against the closed forms of
// bounds/formulas.cpp, and the machine-model schedule preconditions.
#include <string>
#include <vector>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/audit/internal.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/schedule/validate.hpp"

namespace pathrouting::audit {

namespace {

using internal::error;
using internal::error_counts;
using internal::Findings;
using internal::flush;

}  // namespace

AuditReport audit_certificate(const CertificateSpec& spec,
                              const RuleSelection& selection) {
  PR_REQUIRE_MSG(spec.cdag != nullptr && spec.result != nullptr,
                 "audit_certificate: spec needs a cdag and a result");
  const cdag::Layout& layout = spec.cdag->layout();
  const bounds::CertifyResult& result = *spec.result;
  const int r = layout.r();
  const int k = result.k;
  const int max_k = spec.decode_only ? r : r - 2;
  const bool k_valid = k >= 0 && k <= max_k;
  AuditReport report;

  // cert.arithmetic: parameters against the formulas.cpp closed forms.
  Findings arithmetic;
  if (!k_valid) {
    arithmetic.add(error_counts(
        "cert.arithmetic",
        spec.decode_only
            ? "subcomputation order k outside 0..r (Section 5)"
            : "subcomputation order k outside 0..r-2 (Lemma 1 needs two "
              "recursion levels above the counted subcomputations)",
        static_cast<std::uint64_t>(max_k > 0 ? max_k : 0),
        static_cast<std::uint64_t>(k)));
  } else {
    // a^k >= 2 * s_bar_target, i.e. k >= ceil(log_a 2*s_bar_target):
    // each member must hold twice the segment quota of counted vertices
    // so a segment's closure stays inside the family (S6), resp. the
    // decoding rank is wide enough (S5).
    if (k < bounds::ceil_log(layout.a(), 2 * result.s_bar_target)) {
      arithmetic.add(error_counts(
          "cert.arithmetic",
          "a^k < 2 * s_bar_target: subcomputations are too small for the "
          "segment quota",
          2 * result.s_bar_target, layout.pow_a()(k)));
    }
    if (!spec.decode_only) {
      const std::uint64_t guaranteed = layout.pow_b()(r - k - 2);
      if (result.family_guaranteed != guaranteed) {
        arithmetic.add(error_counts(
            "cert.arithmetic",
            "recorded family guarantee is not b^(r-k-2) (Lemma 1)",
            guaranteed, result.family_guaranteed));
      }
      if (result.family_size < result.family_guaranteed) {
        arithmetic.add(error_counts(
            "cert.arithmetic",
            "family is smaller than the recorded Lemma-1 guarantee",
            result.family_guaranteed, result.family_size));
      }
    }
  }
  flush(report, selection, "cert.arithmetic", std::move(arithmetic));

  // cert.segment-order: strictly increasing end steps within the
  // schedule.
  Findings order;
  std::uint64_t prev_end = 0;
  for (std::size_t i = 0; i < result.segments.size(); ++i) {
    const bounds::SegmentReport& segment = result.segments[i];
    if (segment.end_step > spec.schedule_size) {
      order.add(error_counts("cert.segment-order",
                             "segment ends past the schedule",
                             spec.schedule_size, segment.end_step, i));
    }
    if (i > 0 && segment.end_step <= prev_end) {
      order.add(error_counts("cert.segment-order",
                             "segment end steps are not strictly increasing",
                             prev_end + 1, segment.end_step, i));
    }
    prev_end = segment.end_step;
  }
  flush(report, selection, "cert.segment-order", std::move(order));

  // cert.segment-quota: complete segments hold exactly the quota; only
  // the final segment may be incomplete (and must then be short).
  Findings quota;
  for (std::size_t i = 0; i < result.segments.size(); ++i) {
    const bounds::SegmentReport& segment = result.segments[i];
    if (segment.complete) {
      if (segment.s_bar != result.s_bar_target) {
        quota.add(error_counts(
            "cert.segment-quota",
            "complete segment does not hold exactly s_bar_target counted "
            "vertices",
            result.s_bar_target, segment.s_bar, i));
      }
    } else {
      if (i + 1 != result.segments.size()) {
        quota.add(error(
            "cert.segment-quota",
            "incomplete segment is not the final segment of the walk", i));
      }
      if (segment.s_bar >= result.s_bar_target) {
        quota.add(error_counts(
            "cert.segment-quota",
            "segment reached the quota but is not marked complete",
            result.s_bar_target - 1, segment.s_bar, i));
      }
    }
  }
  flush(report, selection, "cert.segment-quota", std::move(quota));

  // cert.counted-total: the closed form, and the segment accounting.
  Findings total;
  if (k_valid) {
    // Section 6 counts the 3*a^k inputs+outputs of each family member;
    // Section 5 counts decoding rank k everywhere: a^k * b^(r-k).
    const std::uint64_t expected =
        spec.decode_only ? layout.pow_a()(k) * layout.pow_b()(r - k)
                         : 3 * layout.pow_a()(k) * result.family_size;
    if (result.counted_total != expected) {
      total.add(error_counts(
          "cert.counted-total",
          spec.decode_only
              ? "counted-vertex total is not a^k * b^(r-k) (Section 5)"
              : "counted-vertex total is not 3 * a^k * |C| (Section 6)",
          expected, result.counted_total));
    }
    if (spec.full_schedule) {
      // A full schedule computes every counted vertex, so the segments
      // jointly account for at least the total (a counted vertex whose
      // meta-vertex straddles a boundary can be counted again, hence
      // >= rather than ==).
      std::uint64_t accounted = 0;
      for (const bounds::SegmentReport& segment : result.segments) {
        accounted += segment.s_bar;
      }
      if (accounted < result.counted_total) {
        total.add(error_counts("cert.counted-total",
                               "segments account for fewer counted vertices "
                               "than the full schedule computes",
                               result.counted_total, accounted));
      }
    }
  }
  flush(report, selection, "cert.counted-total", std::move(total));

  // cert.boundary-eq: Equation (2) |delta'(S')| >= |S_bar|/12, resp.
  // Equation (1) |delta(S)| >= |S_bar|/22, per complete segment.
  Findings boundary;
  const std::uint64_t denominator = spec.decode_only ? 22 : 12;
  for (std::size_t i = 0; i < result.segments.size(); ++i) {
    const bounds::SegmentReport& segment = result.segments[i];
    if (!segment.complete) continue;
    if (segment.boundary * denominator < segment.s_bar) {
      boundary.add(error_counts(
          "cert.boundary-eq",
          spec.decode_only
              ? "segment violates Equation (1): |delta(S)| < |S_bar|/22"
              : "segment violates Equation (2): |delta'(S')| < |S_bar|/12",
          (segment.s_bar + denominator - 1) / denominator, segment.boundary,
          i));
    }
  }
  flush(report, selection, "cert.boundary-eq", std::move(boundary));
  return report;
}

AuditReport audit_schedule(const cdag::Graph& graph,
                           std::span<const VertexId> order,
                           const RuleSelection& selection) {
  const std::vector<Diagnostic> diags =
      schedule::schedule_diagnostics(graph, order);
  // Regroup the position-ordered findings per rule (registry order) so
  // capping and truncation notes work per rule.
  AuditReport report;
  for (const std::string_view rule :
       {std::string_view("schedule.vertex-range"),
        std::string_view("schedule.no-inputs"),
        std::string_view("schedule.no-duplicates"),
        std::string_view("schedule.topological"),
        std::string_view("schedule.coverage")}) {
    Findings findings;
    for (const Diagnostic& diag : diags) {
      if (diag.rule == rule) findings.add(diag);
    }
    flush(report, selection, rule, std::move(findings));
  }
  return report;
}

}  // namespace pathrouting::audit
