// The cdag.* rule suite: structural invariants of the recursive CDAG
// G_r (Section 3, Lemma 2, Fact 1), evaluated over a CdagView so tests
// can audit deliberately corrupted structures.
#include <string>
#include <vector>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/audit/internal.hpp"
#include "pathrouting/support/parallel.hpp"

namespace pathrouting::audit {

namespace {

namespace parallel = support::parallel;
using cdag::Graph;
using cdag::kInvalidVertex;
using cdag::LayerKind;
using cdag::Layout;
using cdag::VertexRef;
using internal::error;
using internal::error_counts;
using internal::Findings;
using internal::flush;

/// Vertices per fixed chunk of the parallel scans. Chunk boundaries are
/// part of the deterministic-output contract (findings survive the cap
/// in chunk order), so this is a constant, not a tuning knob.
constexpr std::uint64_t kScanGrain = 1 << 16;

std::string vertex_str(std::uint64_t v) { return std::to_string(v); }

/// Deterministic per-vertex scan: map every fixed chunk of vertex ids
/// to its findings, folded in chunk order.
template <typename Body>
Findings scan_vertices(const Graph& graph, const Body& body) {
  return parallel::parallel_reduce<Findings>(
      0, graph.num_vertices(), kScanGrain, Findings{},
      [&](std::uint64_t lo, std::uint64_t hi) {
        Findings chunk;
        for (std::uint64_t v = lo; v < hi; ++v) {
          body(static_cast<VertexId>(v), chunk);
        }
        return chunk;
      },
      [](Findings& acc, Findings& chunk) { acc.merge(chunk); });
}

void rule_topological_ids(const CdagView& view, const RuleSelection& selection,
                          AuditReport& report) {
  constexpr std::string_view kRule = "cdag.topological-ids";
  const Graph& graph = *view.graph;
  Findings findings = scan_vertices(graph, [&](VertexId v, Findings& out) {
    const auto preds = graph.in(v);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] >= v) {
        out.add(error_counts(
            kRule,
            "in-edge predecessor " + vertex_str(preds[i]) +
                " does not precede its successor in the id order",
            /*expected=*/v, /*actual=*/preds[i], v,
            graph.in_edge_base(v) + i));
      }
    }
  });
  flush(report, selection, kRule, std::move(findings));
}

void rule_rank_structure(const CdagView& view, const RuleSelection& selection,
                         AuditReport& report) {
  constexpr std::string_view kRule = "cdag.rank-structure";
  const Graph& graph = *view.graph;
  const Layout& layout = *view.layout;
  Findings findings = scan_vertices(graph, [&](VertexId v, Findings& out) {
    const int level = layout.level(v);
    const auto preds = graph.in(v);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] >= graph.num_vertices()) continue;  // topological-ids
      const int pred_level = layout.level(preds[i]);
      if (pred_level + 1 != level) {
        out.add(error_counts(
            kRule,
            "edge from " + vertex_str(preds[i]) + " (level " +
                std::to_string(pred_level) +
                ") does not connect consecutive levels",
            /*expected=*/static_cast<std::uint64_t>(pred_level + 1),
            /*actual=*/static_cast<std::uint64_t>(level), v,
            graph.in_edge_base(v) + i));
      }
    }
  });
  flush(report, selection, kRule, std::move(findings));
}

void rule_degree_bounds(const CdagView& view, const RuleSelection& selection,
                        AuditReport& report) {
  constexpr std::string_view kRule = "cdag.degree-bounds";
  const Graph& graph = *view.graph;
  const Layout& layout = *view.layout;
  const auto a = static_cast<std::uint64_t>(layout.a());
  const auto b = static_cast<std::uint64_t>(layout.b());
  Findings findings = scan_vertices(graph, [&](VertexId v, Findings& out) {
    const VertexRef ref = layout.ref(v);
    const std::uint64_t deg = graph.in_degree(v);
    if (ref.layer != LayerKind::Dec) {
      if (ref.rank == 0) {
        if (deg != 0) {
          out.add(error_counts(kRule, "input vertex has in-edges",
                               /*expected=*/0, deg, v));
        }
      } else if (deg < 1 || deg > a) {
        out.add(error_counts(
            kRule, "encoding vertex in-degree outside 1..a (Section 3)",
            /*expected=*/a, deg, v));
      }
    } else if (ref.rank == 0) {
      if (deg != 2) {
        out.add(error_counts(
            kRule, "product vertex must have exactly two operands",
            /*expected=*/2, deg, v));
      }
    } else if (deg < 1 || deg > b) {
      out.add(error_counts(
          kRule, "decoding vertex in-degree outside 1..b (Section 3)",
          /*expected=*/b, deg, v));
    }
  });
  flush(report, selection, kRule, std::move(findings));
}

void rule_copy_structure(const CdagView& view, const RuleSelection& selection,
                         AuditReport& report) {
  constexpr std::string_view kRule = "cdag.copy-structure";
  const Graph& graph = *view.graph;
  Findings findings = scan_vertices(graph, [&](VertexId v, Findings& out) {
    const VertexId parent = view.copy_parent[v];
    if (parent == kInvalidVertex) return;
    if (parent >= graph.num_vertices()) {
      out.add(error(kRule, "recorded copy-parent is not a vertex", v));
      return;
    }
    if (parent >= v) {
      out.add(error_counts(kRule,
                           "copy-parent id must be smaller than the copy's",
                           /*expected=*/v, /*actual=*/parent, v));
    }
    if (graph.in_degree(v) != 1) {
      out.add(error_counts(kRule, "copy vertex must have in-degree 1",
                           /*expected=*/1, graph.in_degree(v), v));
      return;
    }
    if (graph.in(v)[0] != parent) {
      out.add(error_counts(
          kRule, "copy vertex's unique in-edge is not from its copy-parent",
          /*expected=*/parent, /*actual=*/graph.in(v)[0], v,
          graph.in_edge_base(v)));
    }
    if (!view.in_coeff.empty() &&
        !view.in_coeff[graph.in_edge_base(v)].is_one()) {
      out.add(error(kRule,
                    "copy edge coefficient is not 1 (a copy is verbatim)", v,
                    graph.in_edge_base(v)));
    }
  });
  flush(report, selection, kRule, std::move(findings));
}

void rule_meta_root(const CdagView& view, const RuleSelection& selection,
                    AuditReport& report) {
  constexpr std::string_view kRule = "cdag.meta-root";
  const Graph& graph = *view.graph;
  const VertexId n = graph.num_vertices();
  Findings findings = scan_vertices(graph, [&](VertexId v, Findings& out) {
    const VertexId root = view.meta_root[v];
    if (root >= n) {
      out.add(error(kRule, "recorded meta-root is not a vertex", v));
      return;
    }
    if (root > v) {
      out.add(error_counts(kRule, "meta-root id must not exceed the member's",
                           /*expected=*/v, /*actual=*/root, v));
    }
    if (view.meta_root[root] != root) {
      out.add(error_counts(kRule, "recorded meta-root is not itself a root",
                           /*expected=*/root, /*actual=*/view.meta_root[root],
                           v));
    }
    if (!view.grouped_duplicates && view.copy_parent[v] == kInvalidVertex &&
        root != v) {
      out.add(error_counts(
          kRule,
          "non-copy vertex is not its own meta-root (same-value grouping "
          "is off)",
          /*expected=*/v, /*actual=*/root, v));
    }
  });
  // Size-table reconciliation: recount membership per root. Serial O(n)
  // — the scatter is cheap next to the scans above.
  std::vector<std::uint32_t> count(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (view.meta_root[v] < n) ++count[view.meta_root[v]];
  }
  for (VertexId v = 0; v < n; ++v) {
    if (view.meta_root[v] != v) continue;
    if (view.meta_size[v] != count[v]) {
      findings.add(error_counts(kRule,
                                "recorded meta-vertex size does not match "
                                "its membership count",
                                /*expected=*/count[v],
                                /*actual=*/view.meta_size[v], v));
    }
  }
  flush(report, selection, kRule, std::move(findings));
}

void rule_meta_subtree(const CdagView& view, const RuleSelection& selection,
                       AuditReport& report) {
  constexpr std::string_view kRule = "cdag.meta-subtree";
  const Graph& graph = *view.graph;
  const VertexId n = graph.num_vertices();
  Findings findings = scan_vertices(graph, [&](VertexId v, Findings& out) {
    const VertexId root = view.meta_root[v];
    if (root >= n) return;  // meta-root rule
    const VertexId parent = view.copy_parent[v];
    if (parent == kInvalidVertex) {
      // Lemma 2: the root of an upward subtree is its unique non-copy.
      if (root == v && view.copy_parent[root] != kInvalidVertex) {
        out.add(error(kRule, "meta-root is a copy vertex (Lemma 2 roots "
                             "carry a non-copy definition)",
                      v));
      }
      return;
    }
    if (parent >= n) return;  // copy-structure rule
    if (view.meta_root[parent] != root) {
      out.add(error_counts(
          kRule,
          "copy vertex does not inherit its copy-parent's meta-root, so "
          "the meta-vertex is not an upward subtree (Lemma 2)",
          /*expected=*/view.meta_root[parent], /*actual=*/root, v));
    }
  });
  flush(report, selection, kRule, std::move(findings));
}

/// Per-edge Fact-1 prefix discipline. The shared recursion-path prefix
/// of every edge is what makes the middle 2(k+1) ranks fall apart into
/// b^{r-k} vertex-disjoint copies of G_k: an edge crossing prefixes
/// would weld two subcomputations together.
void rule_fact1_prefix(const CdagView& view, const RuleSelection& selection,
                       AuditReport& report) {
  constexpr std::string_view kRule = "cdag.fact1-prefix";
  const Graph& graph = *view.graph;
  const Layout& layout = *view.layout;
  const int r = layout.r();
  const auto b = static_cast<std::uint64_t>(layout.b());
  const auto& pow_a = layout.pow_a();
  Findings findings = scan_vertices(graph, [&](VertexId v, Findings& out) {
    const VertexRef succ = layout.ref(v);
    const auto preds = graph.in(v);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      const VertexId p = preds[i];
      if (p >= graph.num_vertices()) continue;  // topological-ids
      const std::uint64_t e = graph.in_edge_base(v) + i;
      const VertexRef pred = layout.ref(p);
      if (succ.layer != LayerKind::Dec) {
        if (pred.layer != succ.layer || pred.rank != succ.rank - 1) {
          out.add(error(kRule,
                        "encoding in-edge does not come from the previous "
                        "rank of the same side",
                        v, e));
          continue;
        }
        if (pred.q != succ.q / b || pred.p % pow_a(r - succ.rank) != succ.p) {
          out.add(error(kRule,
                        "encoding edge changes the recursion-path prefix "
                        "or block position (Fact 1)",
                        v, e));
        }
      } else if (succ.rank == 0) {
        if (pred.layer == LayerKind::Dec || pred.rank != r) {
          out.add(error(kRule,
                        "product in-edge does not come from encoding rank r",
                        v, e));
          continue;
        }
        if (pred.q != succ.q) {
          out.add(error(kRule,
                        "multiplication edge joins different recursion "
                        "paths (Fact 1)",
                        v, e));
        }
      } else {
        if (pred.layer != LayerKind::Dec || pred.rank != succ.rank - 1) {
          out.add(error(kRule,
                        "decoding in-edge does not come from the previous "
                        "decoding rank",
                        v, e));
          continue;
        }
        if (pred.q / b != succ.q || pred.p != succ.p % pow_a(succ.rank - 1)) {
          out.add(error(kRule,
                        "decoding edge changes the recursion-path prefix "
                        "or block position (Fact 1)",
                        v, e));
        }
      }
    }
    // A product must multiply one operand from each side.
    if (succ.layer == LayerKind::Dec && succ.rank == 0 && preds.size() == 2 &&
        preds[0] < graph.num_vertices() && preds[1] < graph.num_vertices()) {
      const VertexRef p0 = layout.ref(preds[0]);
      const VertexRef p1 = layout.ref(preds[1]);
      if (p0.layer == p1.layer && p0.layer != LayerKind::Dec) {
        out.add(error(kRule,
                      "product multiplies two operands from the same side",
                      v));
      }
    }
  });
  flush(report, selection, kRule, std::move(findings));
}

}  // namespace

CdagView view_of(const cdag::Cdag& cdag) {
  CdagView view;
  view.graph = &cdag.graph();
  view.layout = &cdag.layout();
  view.copy_parent = cdag.copy_parents();
  view.meta_root = cdag.meta_roots();
  view.meta_size = cdag.meta_sizes();
  view.in_coeff = cdag.in_coeffs();
  view.grouped_duplicates = cdag.grouped_duplicates();
  return view;
}

AuditReport audit_cdag(const CdagView& view, const RuleSelection& selection) {
  PR_REQUIRE_MSG(view.graph != nullptr, "audit_cdag: view has no graph");
  const std::uint64_t n = view.graph->num_vertices();

  AuditReport preamble;
  bool layout_usable = view.layout != nullptr;
  if (view.layout != nullptr && view.layout->num_vertices() != n) {
    preamble.mark_rule_run("cdag.rank-structure");
    preamble.add(error_counts(
        "cdag.rank-structure",
        "layout and graph disagree on the vertex count; skipping "
        "layout-dependent rules",
        view.layout->num_vertices(), n));
    layout_usable = false;
  }
  const bool copies_usable =
      view.copy_parent.size() == n && view.meta_root.size() == n &&
      view.meta_size.size() == n;
  if (!copies_usable && !(view.copy_parent.empty() && view.meta_root.empty() &&
                          view.meta_size.empty())) {
    preamble.mark_rule_run("cdag.copy-structure");
    preamble.add(error("cdag.copy-structure",
                       "copy/meta tables do not cover every vertex; "
                       "skipping copy and meta rules"));
  }

  struct Task {
    std::string_view id;
    void (*run)(const CdagView&, const RuleSelection&, AuditReport&);
    bool needs_layout;
    bool needs_copies;
  };
  static constexpr Task kTasks[] = {
      {"cdag.topological-ids", rule_topological_ids, false, false},
      {"cdag.rank-structure", rule_rank_structure, true, false},
      {"cdag.degree-bounds", rule_degree_bounds, true, false},
      {"cdag.copy-structure", rule_copy_structure, false, true},
      {"cdag.meta-root", rule_meta_root, false, true},
      {"cdag.meta-subtree", rule_meta_subtree, false, true},
      {"cdag.fact1-prefix", rule_fact1_prefix, true, false},
  };
  std::vector<const Task*> enabled;
  for (const Task& task : kTasks) {
    if (!selection.enabled(task.id)) continue;
    if (task.needs_layout && !layout_usable) continue;
    if (task.needs_copies && !copies_usable) continue;
    enabled.push_back(&task);
  }

  // Rule-by-rule sharding over the substrate: one fixed chunk per rule,
  // reports folded in registry order, so the merged report is
  // bit-identical at any PR_THREADS. Nested per-vertex scans inside a
  // rule run inline on the owning worker.
  AuditReport result = parallel::parallel_reduce<AuditReport>(
      0, enabled.size(), /*grain=*/1, AuditReport{},
      [&](std::uint64_t lo, std::uint64_t hi) {
        AuditReport chunk;
        for (std::uint64_t i = lo; i < hi; ++i) {
          enabled[i]->run(view, selection, chunk);
        }
        return chunk;
      },
      [](AuditReport& acc, AuditReport& chunk) {
        acc.merge(std::move(chunk));
      });
  preamble.merge(std::move(result));
  return preamble;
}

AuditReport audit_cdag(const cdag::Cdag& cdag, const RuleSelection& selection) {
  return audit_cdag(view_of(cdag), selection);
}

}  // namespace pathrouting::audit
