// Text and JSON rendering of audit reports (declared in
// audit/diagnostic.hpp; lives in pr_audit so lower layers can produce
// Diagnostics without linking the renderer).
#include <string>

#include "pathrouting/audit/diagnostic.hpp"

namespace pathrouting::audit {

namespace {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "unknown";
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string AuditReport::to_text() const {
  std::string out;
  for (const Diagnostic& diag : diagnostics_) {
    out += severity_name(diag.severity);
    out += " [";
    out += diag.rule;
    out += "] ";
    out += diag.message;
    if (diag.vertex != kNoId) {
      out += " (vertex ";
      out += std::to_string(diag.vertex);
      out += ')';
    }
    if (diag.edge != kNoId) {
      out += " (edge ";
      out += std::to_string(diag.edge);
      out += ')';
    }
    if (diag.has_counts) {
      out += " (expected ";
      out += std::to_string(diag.expected);
      out += ", actual ";
      out += std::to_string(diag.actual);
      out += ')';
    }
    out += '\n';
  }
  out += std::to_string(rules_run_.size());
  out += " rules run, ";
  out += std::to_string(num_errors());
  out += " errors, ";
  out += std::to_string(diagnostics_.size() - num_errors());
  out += " other findings\n";
  return out;
}

std::string AuditReport::to_json() const {
  std::string out = "{\"rules_run\":[";
  for (std::size_t i = 0; i < rules_run_.size(); ++i) {
    if (i > 0) out += ',';
    append_json_string(out, rules_run_[i]);
  }
  out += "],\"num_errors\":";
  out += std::to_string(num_errors());
  out += ",\"findings\":[";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& diag = diagnostics_[i];
    if (i > 0) out += ',';
    out += "{\"rule\":";
    append_json_string(out, diag.rule);
    out += ",\"severity\":";
    append_json_string(out, severity_name(diag.severity));
    out += ",\"message\":";
    append_json_string(out, diag.message);
    if (diag.vertex != kNoId) {
      out += ",\"vertex\":";
      out += std::to_string(diag.vertex);
    }
    if (diag.edge != kNoId) {
      out += ",\"edge\":";
      out += std::to_string(diag.edge);
    }
    if (diag.has_counts) {
      out += ",\"expected\":";
      out += std::to_string(diag.expected);
      out += ",\"actual\":";
      out += std::to_string(diag.actual);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace pathrouting::audit
