// The paper-invariant linter: exhaustive structural rule suites over
// constructed CDAGs, routings, Hall matchings, disjoint families,
// segment certificates, and schedules, reporting machine-readable
// Diagnostics (audit/diagnostic.hpp) instead of aborting.
//
// Suites shard deterministically over the parallel substrate
// (support/parallel.hpp): rules run as fixed chunks and reports fold in
// registry order, so the output is bit-identical at any PR_THREADS.
// Congestion counts reuse the exactly-commutative sharded accumulation
// the routing verifiers use.
//
// Rule suites take *views* (plain spans over the structure) rather than
// the owning objects, so tests can assemble deliberately corrupted
// structures and assert that the right rule fires on the right vertex.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pathrouting/audit/diagnostic.hpp"
#include "pathrouting/audit/registry.hpp"
#include "pathrouting/bounds/disjoint_family.hpp"
#include "pathrouting/bounds/segment_certifier.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/subcomputation.hpp"
#include "pathrouting/routing/chain_routing.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/routing/memo_routing.hpp"
#include "pathrouting/routing/path_store.hpp"

namespace pathrouting::audit {

using cdag::VertexId;

/// A borrowed view of a CDAG's structure: the graph, the vertex
/// addressing, and the copy/meta tables. All spans are indexed by
/// vertex id (in_coeff by global in-edge index) and may be empty when
/// the corresponding structure was not built. The view does not own
/// anything; keep the backing storage alive.
struct CdagView {
  const cdag::Graph* graph = nullptr;
  const cdag::Layout* layout = nullptr;
  std::span<const VertexId> copy_parent;
  std::span<const VertexId> meta_root;
  std::span<const std::uint32_t> meta_size;
  std::span<const support::Rational> in_coeff;
  bool grouped_duplicates = false;
};

/// The view of a library-built CDAG (no copies; borrows from `cdag`).
CdagView view_of(const cdag::Cdag& cdag);

/// A family of routed paths in CSR form: path i is
/// vertices[offsets[i] .. offsets[i+1]). Optional per-path declared
/// terminals and family-wide expectations switch individual rules on.
struct PathFamily {
  std::span<const std::uint64_t> offsets;  // |paths| + 1 entries
  std::span<const VertexId> vertices;
  std::span<const VertexId> sources;  // declared path starts (or empty)
  std::span<const VertexId> sinks;    // declared path ends (or empty)
  std::uint64_t congestion_bound = 0;  // 0 = skip routing.congestion
  std::uint64_t expected_length = 0;   // 0 = skip routing.path-length
  std::uint64_t expected_paths = 0;    // 0 = skip routing.chain-count
  bool vertex_disjoint = false;        // enables routing.path-disjoint
  /// Decoding zig-zags traverse decoding edges in both directions
  /// (Claim 1 routes in the undirected D_k); chains do not.
  bool undirected = false;
};

/// Structural audit of the CDAG (cdag.* rules).
AuditReport audit_cdag(const CdagView& view,
                       const RuleSelection& selection = RuleSelection::all());
AuditReport audit_cdag(const cdag::Cdag& cdag,
                       const RuleSelection& selection = RuleSelection::all());

/// Structural audit through the polymorphic cdag::CdagView (NOT the
/// borrowed-span audit::CdagView above). Explicit-backed views delegate
/// to the exhaustive suite; implicit views run the per-vertex subset of
/// the cdag.* rules over a deterministic sample, and the clauses that
/// need whole-graph arrays (the meta-root membership recount) are
/// skipped with a kNote instead of silently passing.
AuditReport audit_cdag_view(
    const cdag::CdagView& view,
    const RuleSelection& selection = RuleSelection::all());

/// cdag.view-consistency: exhaustive per-vertex comparison of a view
/// against an explicit reference Cdag of the same (algorithm, r) —
/// degrees, neighbor lists (order-sensitive), copy parents, meta
/// tables, and the edge count must be bit-identical.
AuditReport audit_view_consistency(
    const cdag::CdagView& view, const cdag::Cdag& reference,
    const RuleSelection& selection = RuleSelection::all());

/// The PathFamily view of an arena-backed store: the CSR shapes
/// coincide, so no copying. Expectations (bounds, lengths, counts) stay
/// zeroed; set them on the returned view before auditing.
PathFamily family_view(const routing::PathStore& store);

/// Generic path-family audit (routing.* rules except chain-count).
AuditReport audit_path_family(
    const CdagView& view, const PathFamily& family,
    const RuleSelection& selection = RuleSelection::all());

/// Fact 1: audits a copy-renaming block table against the canonical
/// G_k tiling (fact1.copy-blocks) and the subcomputation address
/// formulas / injectivity into G_r (fact1.copy-bijection). Findings
/// attach the offending block index in `vertex`. Requires
/// 1 <= k <= r and prefix < b^(r-k).
AuditReport audit_copy_translation(
    const cdag::Layout& global, int k, std::uint64_t prefix,
    std::span<const cdag::CopyBlock> blocks,
    const RuleSelection& selection = RuleSelection::all());

/// Certificate reconciliation of a memoized chain-hit array
/// (routing.memo-totals): the chain count, the total-hits closed form
/// num_chains * (2k+2), and the recorded max/argmax must match
/// `counts`; the array is also checked against the 2*n0^k congestion
/// bound (routing.congestion).
AuditReport audit_memo_chain_counts(
    const routing::MemoRoutingEngine& engine, const cdag::SubComputation& sub,
    const routing::ChainHitCounts& counts,
    const RuleSelection& selection = RuleSelection::all());

/// One-stop memoized-routing audit of `sub`: the Fact-1 copy renaming
/// (fact1.*), the memoized chain counts, and — when the engine has a
/// decoder — the Claim-1 totals and congestion of the memoized decode
/// array.
AuditReport audit_memo_routing(
    const routing::MemoRoutingEngine& engine, const cdag::SubComputation& sub,
    const RuleSelection& selection = RuleSelection::all());

/// routing.implicit-match: the constant-memory implicit engine path
/// (addressing G_k^prefix by (k, prefix) through a view) must reproduce
/// the array-backed memoized certificates of `sub` field for field —
/// chain stats, the Lemma-4 multiplicity verdict, Theorem-2 stats, and
/// (when the engine has a decoder) decode stats.
AuditReport audit_implicit_routing(
    const routing::MemoRoutingEngine& engine, const cdag::SubComputation& sub,
    const RuleSelection& selection = RuleSelection::all());

/// Lemma 3: materializes every guaranteed-dependence chain of `sub` and
/// audits edges, endpoints, length 2k+2, the 2*n0^k congestion bound,
/// and the 2*a^k*n0^k chain count. Memory is O(paths in flight); the
/// congestion count shards exactly like the routing verifiers.
AuditReport audit_chain_routing(
    const routing::ChainRouter& router, const cdag::SubComputation& sub,
    const RuleSelection& selection = RuleSelection::all());

/// Theorem 2: streams all 2*a^(2k) concatenated paths, auditing edges,
/// endpoints, and the 6*a^k congestion bound (vertex and meta level).
AuditReport audit_concat_routing(
    const routing::ChainRouter& router, const cdag::SubComputation& sub,
    const RuleSelection& selection = RuleSelection::all());

/// Claim 1: streams all b^k*a^k decode zig-zag paths of sub's D_k,
/// auditing (undirected) edges, endpoints, and the |D_1|*max(a,b)^k
/// congestion bound.
AuditReport audit_decode_routing(
    const routing::DecodeRouter& router, const cdag::SubComputation& sub,
    const RuleSelection& selection = RuleSelection::all());

/// Theorem 3: validates a Hall matching witness for `side`. Findings
/// attach the flat digit-pair index d_in*a + d_out (hall.domain,
/// hall.edge-validity) or the product index q (hall.capacity) in the
/// `vertex` field.
AuditReport audit_hall_matching(
    const bilinear::BilinearAlgorithm& alg, bilinear::Side side,
    const routing::BaseMatching& matching,
    const RuleSelection& selection = RuleSelection::all());

/// Lemma 1: pairwise input-disjointness and the b^(r-k-2) size bound of
/// a disjoint family. Findings attach the offending prefix in `vertex`.
AuditReport audit_disjoint_family(
    const cdag::Cdag& cdag, const bounds::DisjointFamily& family,
    const RuleSelection& selection = RuleSelection::all());

/// What a segment certificate claims to certify, for reconciliation
/// against the closed forms in bounds/formulas.cpp.
struct CertificateSpec {
  const cdag::Cdag* cdag = nullptr;
  const bounds::CertifyResult* result = nullptr;
  std::uint64_t schedule_size = 0;
  bool decode_only = false;  // Section 5 (true) vs Section 6 (false)
  /// Whether the certified schedule computed every non-input vertex
  /// (enables the segment-sum side of cert.counted-total).
  bool full_schedule = true;
};

/// Sections 5-6: audits a certifier result (cert.* rules). Findings
/// attach the segment index in `vertex`.
AuditReport audit_certificate(
    const CertificateSpec& spec,
    const RuleSelection& selection = RuleSelection::all());

/// Machine-model preconditions of a schedule (schedule.* rules);
/// the full-diagnosis form of schedule::validate_schedule.
AuditReport audit_schedule(
    const cdag::Graph& graph, std::span<const VertexId> order,
    const RuleSelection& selection = RuleSelection::all());

/// What the certificate service is about to hand out: the payload
/// words plus the digests they are supposed to re-digest to. Spans
/// only — the audit layer does not link the service, so the service
/// can link the audit layer and run this on every response.
struct ServedCertificateView {
  std::span<const std::uint64_t> payload;
  /// Digest recorded in the certificate's own header at build/load.
  std::uint64_t recorded_digest = 0;
  /// Digest the store indexed under the content address (0 = the key
  /// is not in the store, e.g. a memory-only compute; the clause is
  /// skipped).
  std::uint64_t store_digest = 0;
};

/// service.cert-digest-match: re-digests the payload with the shared
/// FNV-1a definition (support/digest.hpp) and requires it to equal the
/// header digest and — when present — the store's indexed digest. A
/// certificate whose counts drifted from its content address must
/// never be served.
AuditReport audit_served_certificate(
    const ServedCertificateView& served,
    const RuleSelection& selection = RuleSelection::all());

/// A schedule-search optimality certificate: the witness schedule, the
/// claimed Belady cost, and the claimed root lower bound. Spans only —
/// the rule rebuilds everything it checks (it re-simulates the witness
/// and re-derives the bound independently), so a certificate can come
/// from a bench baseline, a golden record, or a live search run.
struct SearchCertificateView {
  const cdag::Graph* graph = nullptr;
  std::span<const VertexId> schedule;           // the witness
  std::span<const std::uint8_t> output_mask;    // size num_vertices
  std::uint64_t cache_size = 0;                 // M, in values
  std::uint64_t claimed_io = 0;                 // Belady reads + writes
  std::uint64_t claimed_lower_bound = 0;        // root bound of the search
  /// The certificate claims the witness is optimal because its cost
  /// met the root bound (search::Proof::kBoundMet). When false, only
  /// the consistency clauses run (re-simulation, bound re-derivation,
  /// cost >= bound).
  bool claims_bound_met_optimal = false;
  /// Theorem-1 term of the root bound: a^r multiplications of an
  /// (a;b) algorithm at recursion depth r. a = 0 disables the term
  /// (the structural bound alone is re-derived).
  std::uint64_t theorem1_a = 0;
  std::uint64_t theorem1_b = 0;
  int theorem1_r = 0;
};

/// search.certified-optimal: independently re-establishes everything a
/// certified-optimal claim rests on — the witness is a clean complete
/// topological schedule, its Belady re-simulation reproduces the
/// claimed I/O exactly, the root lower bound re-derives (partial-state
/// bound at the empty prefix max-combined with the Theorem-1 closed
/// form) to the claimed value, the cost dominates the bound, and a
/// bound-met optimality claim means cost == bound.
AuditReport audit_search_certificate(
    const SearchCertificateView& cert,
    const RuleSelection& selection = RuleSelection::all());

/// A simulated machine's per-superstep conservation log plus its
/// lifetime counters ([16] Section 1 accounting). Spans only — the
/// audit layer does not link pr_parallel, so the machine (and its
/// tests and benches) can hand over parallel::Machine::step_sent()
/// etc. directly.
struct MachineSuperstepView {
  /// Total words sent / received across all processors, and the
  /// charged max per-processor traffic, one entry per counted
  /// superstep (equal lengths).
  std::span<const std::uint64_t> step_sent;
  std::span<const std::uint64_t> step_received;
  std::span<const std::uint64_t> step_max_traffic;
  /// Lifetime counters the log must reproduce.
  std::uint64_t bandwidth_cost = 0;
  std::uint64_t total_words = 0;
  std::uint64_t supersteps = 0;
};

/// machine.superstep-conservation: every word sent in a superstep is
/// received in that superstep (point-to-point messages do not cross
/// superstep boundaries and are never dropped), the charged max
/// per-processor traffic is positive and bounded by the superstep's
/// words-in-flight, and the lifetime counters are exactly the sums of
/// the log. Findings attach the superstep index in `vertex`.
AuditReport audit_machine_supersteps(
    const MachineSuperstepView& machine,
    const RuleSelection& selection = RuleSelection::all());

/// The same rule's pair form: the class-aggregate and scalar paths (or
/// any two machines that replayed the same schedule) must agree on
/// every counter and every conservation-log entry.
AuditReport audit_machine_pair(
    const MachineSuperstepView& aggregate, const MachineSuperstepView& scalar,
    const RuleSelection& selection = RuleSelection::all());

/// One-stop audit used by pr_lint and the debug hooks: the CDAG
/// structural suite plus, where applicable, Hall matchings (both
/// sides), chain/concatenation routing at a small k, decode routing
/// (when the decoding graph is connected), a disjoint family, a DFS
/// schedule, and a segment certificate over it.
struct RunAllOptions {
  RuleSelection selection = RuleSelection::all();
  /// Subcomputation order for the routing audits; -1 = min(r, 2).
  /// The routing suites stream 2*a^(2k) paths, so keep k small.
  int routing_k = -1;
  bool with_routing = true;
  bool with_certificate = true;
};
AuditReport run_all(const cdag::Cdag& cdag, const RunAllOptions& options = {});

/// Installs the PATHROUTING_DEBUG_CHECKS hooks: after every Cdag
/// construction the cdag.* suite runs and PR_ASSERTs a clean report.
/// Linking pr_audit in a debug-checks build installs them automatically
/// (static registrar in audit.cpp); call this to install them
/// explicitly in any build.
void install_debug_hooks();

}  // namespace pathrouting::audit
