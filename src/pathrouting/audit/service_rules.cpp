// The serving-layer rule: a certificate leaving the service must still
// digest to its content address. The counts in a certificate ARE the
// paper's verification outcomes (Lemmas 3-4, Theorem 2, Claim 1), so a
// payload that no longer matches the digest it was stored under is a
// corrupted claim, not a stale cache entry.
#include <sstream>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/audit/internal.hpp"
#include "pathrouting/support/digest.hpp"

namespace pathrouting::audit {

AuditReport audit_served_certificate(const ServedCertificateView& served,
                                     const RuleSelection& selection) {
  constexpr std::string_view kRule = "service.cert-digest-match";
  AuditReport report;
  internal::Findings findings;
  const std::uint64_t fresh = support::fnv1a_words(served.payload);
  if (fresh != served.recorded_digest) {
    std::ostringstream os;
    os << "payload re-digests to " << fresh
       << " but the certificate header records " << served.recorded_digest;
    findings.add(internal::error_counts(kRule, os.str(),
                                        served.recorded_digest, fresh));
  }
  if (served.store_digest != 0 && fresh != served.store_digest) {
    std::ostringstream os;
    os << "payload re-digests to " << fresh
       << " but the store indexed digest " << served.store_digest
       << " under this content address";
    findings.add(
        internal::error_counts(kRule, os.str(), served.store_digest, fresh));
  }
  internal::flush(report, selection, kRule, std::move(findings));
  return report;
}

}  // namespace pathrouting::audit
