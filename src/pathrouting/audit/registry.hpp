// The audit rule registry: every structural rule the linter can run,
// with the paper statement it enforces. Rule ids are stable strings
// ("domain.rule-name"); CI configs, tests, and pr_lint's --rules flag
// key on them, so renaming one is a breaking change.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pathrouting/audit/diagnostic.hpp"

namespace pathrouting::audit {

struct RuleInfo {
  std::string_view id;         // e.g. "cdag.rank-structure"
  std::string_view summary;    // one line, imperative
  std::string_view paper_ref;  // lemma/theorem/claim enforced
};

/// All registered rules, in the deterministic order suites run them.
std::span<const RuleInfo> all_rules();

/// Lookup by id; nullptr if unknown.
const RuleInfo* find_rule(std::string_view id);

/// Which rules a suite should evaluate. Defaults to everything;
/// selections are by exact id or by "domain." prefix.
class RuleSelection {
 public:
  /// Every registered rule (the default).
  static RuleSelection all() { return RuleSelection{}; }
  /// Only the listed ids/prefixes. Unknown ids are a precondition
  /// violation (catches typos in CI configs).
  static RuleSelection only(const std::vector<std::string>& ids);

  /// Removes a rule (or a whole "domain." prefix) from the selection.
  void disable(std::string_view id_or_prefix);

  [[nodiscard]] bool enabled(std::string_view rule_id) const;

 private:
  // include_mode_: ids_ is an allowlist; otherwise a denylist.
  bool include_mode_ = false;
  std::vector<std::string> ids_;
};

}  // namespace pathrouting::audit
