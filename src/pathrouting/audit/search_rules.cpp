// The schedule-search rule: a certified-optimal claim is only as good
// as its re-derivation. The rule trusts nothing in the certificate —
// it re-validates the witness against the machine model, re-simulates
// it under Belady, and re-derives the root lower bound (the empty-
// prefix partial-state bound max-combined with the paper's Theorem-1
// closed form), then requires the claimed numbers to match exactly.
#include <algorithm>
#include <sstream>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/audit/internal.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/bounds/schedule_bound.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/schedule/validate.hpp"

namespace pathrouting::audit {

AuditReport audit_search_certificate(const SearchCertificateView& cert,
                                     const RuleSelection& selection) {
  constexpr std::string_view kRule = "search.certified-optimal";
  AuditReport report;
  internal::Findings findings;
  const cdag::Graph& graph = *cert.graph;
  const auto is_output = [&](VertexId v) {
    return v < cert.output_mask.size() && cert.output_mask[v] != 0;
  };

  // Clause 1: the witness is a clean, complete topological schedule.
  const std::vector<Diagnostic> schedule_findings =
      schedule::schedule_diagnostics(graph, cert.schedule);
  for (const Diagnostic& diag : schedule_findings) {
    findings.add(internal::error(
        kRule, "witness schedule violates " + diag.rule + ": " + diag.message,
        diag.vertex));
  }

  if (schedule_findings.empty()) {
    // Clause 2: the Belady re-simulation reproduces the claimed I/O.
    const pebble::PebbleResult sim = pebble::simulate(
        graph, cert.schedule, {.cache_size = cert.cache_size}, is_output);
    if (sim.io() != cert.claimed_io) {
      std::ostringstream os;
      os << "witness re-simulates to " << sim.io() << " I/Os (" << sim.reads
         << "r+" << sim.writes << "w) but the certificate claims "
         << cert.claimed_io;
      findings.add(
          internal::error_counts(kRule, os.str(), cert.claimed_io, sim.io()));
    }
  }

  // Clause 3: the root lower bound re-derives to the claimed value.
  const bounds::PartialBound root = bounds::partial_schedule_lower_bound(
      graph, {}, cert.cache_size, is_output);
  std::uint64_t rederived = root.total();
  if (cert.theorem1_a > 0) {
    rederived = std::max(
        rederived, bounds::theorem1_io_lower_bound(
                       static_cast<int>(cert.theorem1_a),
                       static_cast<int>(cert.theorem1_b), cert.theorem1_r,
                       cert.cache_size));
  }
  if (rederived != cert.claimed_lower_bound) {
    std::ostringstream os;
    os << "root lower bound re-derives to " << rederived
       << " but the certificate claims " << cert.claimed_lower_bound;
    findings.add(internal::error_counts(kRule, os.str(),
                                        cert.claimed_lower_bound, rederived));
  }

  // Clause 4: no claimed cost may undercut the claimed bound.
  if (cert.claimed_io < cert.claimed_lower_bound) {
    std::ostringstream os;
    os << "claimed I/O " << cert.claimed_io
       << " undercuts the claimed lower bound " << cert.claimed_lower_bound;
    findings.add(internal::error_counts(kRule, os.str(),
                                        cert.claimed_lower_bound,
                                        cert.claimed_io));
  }

  // Clause 5: a bound-met optimality proof means cost == bound.
  if (cert.claims_bound_met_optimal &&
      cert.claimed_io != cert.claimed_lower_bound) {
    std::ostringstream os;
    os << "certificate claims bound-met optimality but claimed I/O "
       << cert.claimed_io << " != claimed lower bound "
       << cert.claimed_lower_bound;
    findings.add(internal::error_counts(kRule, os.str(),
                                        cert.claimed_lower_bound,
                                        cert.claimed_io));
  }

  internal::flush(report, selection, kRule, std::move(findings));
  return report;
}

}  // namespace pathrouting::audit
