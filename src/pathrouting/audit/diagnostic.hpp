// Machine-readable findings for the paper-invariant linter.
//
// Every structural check in the audit layer reports Diagnostics instead
// of aborting: a failure triager gets the violated rule's id, the
// offending vertex/edge, and expected-vs-actual counts, and a CI job
// gets a stable exit status and JSON. (Contract macros in
// support/check.hpp remain the right tool for *preconditions*; the
// audit layer is for validating *constructed objects* after the fact.)
//
// This header is dependency-light on purpose: lower layers (e.g. the
// schedule validator) produce Diagnostics without linking the rule
// suites in pr_audit. Rendering (to_text/to_json) lives in
// audit/render.cpp inside pr_audit.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pathrouting::audit {

enum class Severity : std::uint8_t {
  kError,    // a paper invariant is violated
  kWarning,  // suspicious but not a proof-breaking violation
  kNote,     // context attached to another finding
};

/// Sentinel for "no vertex/edge attached to this finding".
inline constexpr std::uint64_t kNoId = static_cast<std::uint64_t>(-1);

struct Diagnostic {
  std::string rule;     // registry id, e.g. "cdag.rank-structure"
  Severity severity = Severity::kError;
  std::string message;  // one line, human-oriented
  std::uint64_t vertex = kNoId;  // offending vertex id, if any
  std::uint64_t edge = kNoId;    // offending global in-edge index, if any
  std::uint64_t expected = 0;    // expected count/bound (valid if has_counts)
  std::uint64_t actual = 0;      // observed count (valid if has_counts)
  bool has_counts = false;

  bool operator==(const Diagnostic&) const = default;
};

/// The result of running one or more audit rules: which rules ran and
/// every finding, in deterministic (rule, scan) order regardless of
/// PR_THREADS. Reports merge associatively, so rule suites shard over
/// the parallel substrate and fold in rule order.
class AuditReport {
 public:
  /// Records that a rule executed (with or without findings).
  void mark_rule_run(std::string rule_id) {
    rules_run_.push_back(std::move(rule_id));
  }
  void add(Diagnostic diagnostic) {
    diagnostics_.push_back(std::move(diagnostic));
  }
  void merge(AuditReport other) {
    for (auto& rule : other.rules_run_) rules_run_.push_back(std::move(rule));
    for (auto& diag : other.diagnostics_) {
      diagnostics_.push_back(std::move(diag));
    }
  }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] const std::vector<std::string>& rules_run() const {
    return rules_run_;
  }
  [[nodiscard]] std::uint64_t num_errors() const {
    std::uint64_t count = 0;
    for (const Diagnostic& diag : diagnostics_) {
      count += diag.severity == Severity::kError ? 1 : 0;
    }
    return count;
  }
  /// True iff no error-severity findings (warnings/notes permitted).
  [[nodiscard]] bool ok() const { return num_errors() == 0; }
  /// True iff some finding carries the given rule id.
  [[nodiscard]] bool has_finding(std::string_view rule_id) const {
    for (const Diagnostic& diag : diagnostics_) {
      if (diag.rule == rule_id) return true;
    }
    return false;
  }

  bool operator==(const AuditReport&) const = default;

  /// Human-readable rendering, one line per finding (render.cpp).
  [[nodiscard]] std::string to_text() const;
  /// Stable JSON object {"rules_run": [...], "findings": [...]}.
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<std::string> rules_run_;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace pathrouting::audit
