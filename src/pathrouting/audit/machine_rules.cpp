// The machine-model rule: BSP superstep accounting must conserve
// words. The paper's parallel model ([16], Section 1) charges the max
// per-processor traffic per superstep; a machine whose supersteps send
// more words than are received (or whose lifetime counters drift from
// its own per-superstep log) is mis-charging bandwidth, and every
// scaling experiment built on it inherits the error. The pair form
// pins the sparse class-aggregate path to the scalar oracle.
#include <algorithm>
#include <sstream>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/audit/internal.hpp"

namespace pathrouting::audit {

namespace {

constexpr std::string_view kRule = "machine.superstep-conservation";

void check_log(const MachineSuperstepView& machine,
               internal::Findings& findings) {
  const std::size_t steps = machine.step_sent.size();
  if (machine.step_received.size() != steps ||
      machine.step_max_traffic.size() != steps) {
    findings.add(internal::error(
        kRule, "conservation log arrays have mismatched lengths"));
    return;
  }
  if (machine.supersteps != steps) {
    findings.add(internal::error_counts(
        kRule, "superstep counter disagrees with the log length",
        machine.supersteps, steps));
  }
  std::uint64_t sum_max = 0;
  std::uint64_t sum_sent = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    const std::uint64_t sent = machine.step_sent[i];
    const std::uint64_t received = machine.step_received[i];
    const std::uint64_t max_traffic = machine.step_max_traffic[i];
    if (sent != received) {
      findings.add(internal::error_counts(
          kRule, "superstep words sent != words received", sent, received,
          i));
    }
    if (max_traffic == 0 || max_traffic > sent + received) {
      std::ostringstream os;
      os << "charged max per-processor traffic " << max_traffic
         << " is outside (0, sent+received = " << sent + received << "]";
      findings.add(internal::error(kRule, os.str(), i));
    }
    sum_max += max_traffic;
    sum_sent += sent;
  }
  if (machine.bandwidth_cost != sum_max) {
    findings.add(internal::error_counts(
        kRule, "bandwidth cost is not the sum of charged superstep maxima",
        sum_max, machine.bandwidth_cost));
  }
  if (machine.total_words != sum_sent) {
    findings.add(internal::error_counts(
        kRule, "total words is not the sum of superstep sends", sum_sent,
        machine.total_words));
  }
}

}  // namespace

AuditReport audit_machine_supersteps(const MachineSuperstepView& machine,
                                     const RuleSelection& selection) {
  AuditReport report;
  internal::Findings findings;
  check_log(machine, findings);
  internal::flush(report, selection, kRule, std::move(findings));
  return report;
}

AuditReport audit_machine_pair(const MachineSuperstepView& aggregate,
                               const MachineSuperstepView& scalar,
                               const RuleSelection& selection) {
  AuditReport report;
  internal::Findings findings;
  check_log(aggregate, findings);
  check_log(scalar, findings);
  const auto counter = [&](const char* what, std::uint64_t agg,
                           std::uint64_t sca) {
    if (agg == sca) return;
    std::ostringstream os;
    os << "aggregate and scalar machines disagree on " << what;
    findings.add(internal::error_counts(kRule, os.str(), sca, agg));
  };
  counter("bandwidth cost", aggregate.bandwidth_cost, scalar.bandwidth_cost);
  counter("total words", aggregate.total_words, scalar.total_words);
  counter("supersteps", aggregate.supersteps, scalar.supersteps);
  counter("conservation-log length", aggregate.step_sent.size(),
          scalar.step_sent.size());
  const std::size_t steps =
      std::min(aggregate.step_sent.size(), scalar.step_sent.size());
  for (std::size_t i = 0; i < steps; ++i) {
    if (aggregate.step_sent[i] != scalar.step_sent[i]) {
      findings.add(internal::error_counts(
          kRule, "aggregate and scalar superstep sends differ",
          scalar.step_sent[i], aggregate.step_sent[i], i));
    }
    if (aggregate.step_max_traffic[i] != scalar.step_max_traffic[i]) {
      findings.add(internal::error_counts(
          kRule, "aggregate and scalar superstep maxima differ",
          scalar.step_max_traffic[i], aggregate.step_max_traffic[i], i));
    }
  }
  internal::flush(report, selection, kRule, std::move(findings));
  return report;
}

}  // namespace pathrouting::audit
