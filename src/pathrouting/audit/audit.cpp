// run_all: the one-stop audit used by pr_lint and the debug hooks, and
// the PATHROUTING_DEBUG_CHECKS hook installation.
#include <algorithm>
#include <cstdio>
#include <optional>
#include <vector>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/audit/internal.hpp"
#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/cdag/implicit.hpp"
#include "pathrouting/routing/concat_routing.hpp"
#include "pathrouting/routing/hall.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/support/debug_hooks.hpp"

namespace pathrouting::audit {

AuditReport run_all(const cdag::Cdag& cdag, const RunAllOptions& options) {
  const bilinear::BilinearAlgorithm& alg = cdag.algorithm();
  const cdag::Layout& layout = cdag.layout();
  const int r = layout.r();
  const RuleSelection& selection = options.selection;

  AuditReport report = audit_cdag(cdag, selection);

  if (!cdag.grouped_duplicates() && r >= 1) {
    // The implicit view models the ungrouped Section-3 builder output;
    // reconcile it against this very graph (cdag.view-consistency).
    const cdag::ImplicitCdag implicit(alg, r);
    report.merge(audit_view_consistency(implicit, cdag, selection));
  }

  if (options.with_routing) {
    const std::optional<routing::BaseMatching> mu_a =
        routing::compute_base_matching(alg, bilinear::Side::A);
    const std::optional<routing::BaseMatching> mu_b =
        routing::compute_base_matching(alg, bilinear::Side::B);
    if (!mu_a || !mu_b) {
      // The ChainRouter would abort here; report it as the Hall failure
      // it is and skip the routing suites.
      internal::Findings findings;
      findings.add(internal::error(
          "hall.domain",
          std::string("no Theorem-3 base matching exists for side ") +
              (!mu_a ? "A" : "B") +
              " (Lemma 5's Hall condition fails); routing audits skipped"));
      internal::flush(report, selection, "hall.domain", std::move(findings));
    } else {
      report.merge(audit_hall_matching(alg, bilinear::Side::A, *mu_a,
                                       selection));
      report.merge(audit_hall_matching(alg, bilinear::Side::B, *mu_b,
                                       selection));
      int k = options.routing_k >= 0 ? std::min(options.routing_k, r)
                                     : std::min(r, 2);
      if (options.routing_k < 0) {
        // The concatenation audit streams 2*a^(2k) paths; keep the
        // automatic k below ~4M of them (wide bases shrink to k=1).
        while (k > 1 && 2 * layout.pow_a()(k) * layout.pow_a()(k) > 4000000) {
          --k;
        }
      }
      const routing::ChainRouter router(alg);
      const cdag::SubComputation sub(cdag, k, 0);
      report.merge(audit_chain_routing(router, sub, selection));
      report.merge(audit_concat_routing(router, sub, selection));
      std::optional<routing::DecodeRouter> decoder;
      if (bilinear::decoding_components(alg) == 1) {
        // The decode audit streams a^k*b^k zig-zags; same budget.
        int kd = k;
        while (kd > 1 &&
               layout.pow_a()(kd) * layout.pow_b()(kd) > 4000000) {
          --kd;
        }
        decoder.emplace(alg);
        const cdag::SubComputation dsub(cdag, kd, 0);
        report.merge(audit_decode_routing(*decoder, dsub, selection));
      }
      if (k >= 1) {
        // The memoized engine re-derives the same hit arrays from the
        // closed forms; reconcile them (and the Fact-1 renaming)
        // against the certificates.
        std::optional<routing::MemoRoutingEngine> engine;
        if (decoder) {
          engine.emplace(router, *decoder);
        } else {
          engine.emplace(router);
        }
        report.merge(audit_memo_routing(*engine, sub, selection));
        report.merge(audit_implicit_routing(*engine, sub, selection));
      }
      if (r >= 2 && bilinear::lemma1_precondition(alg)) {
        const int kf = std::min(r - 2, 1);
        const bounds::DisjointFamily family =
            bounds::build_disjoint_family(cdag, kf);
        report.merge(audit_disjoint_family(cdag, family, selection));
      }
    }
  }

  const std::vector<VertexId> order = schedule::dfs_schedule(cdag);
  report.merge(audit_schedule(cdag.graph(), order, selection));

  if (options.with_certificate && r >= 1) {
    // Paper-sized targets (36M / 66M) need astronomically large ranks;
    // audits use the smallest honest parameters instead: k = 1 with the
    // half-rank condition a >= 2 * s_bar_target tight-ish.
    const auto target = static_cast<std::uint64_t>(layout.a() / 2);
    bounds::CertifyParams params;
    params.cache_size = 1;
    params.k = 1;
    params.s_bar_target = target;
    {
      const bounds::CertifyResult s5 =
          bounds::certify_segments_decode_only(cdag, order, params);
      CertificateSpec spec;
      spec.cdag = &cdag;
      spec.result = &s5;
      spec.schedule_size = order.size();
      spec.decode_only = true;
      report.merge(audit_certificate(spec, selection));
    }
    if (r >= 3 && bilinear::lemma1_precondition(alg)) {
      const bounds::CertifyResult s6 =
          bounds::certify_segments(cdag, order, params);
      CertificateSpec spec;
      spec.cdag = &cdag;
      spec.result = &s6;
      spec.schedule_size = order.size();
      spec.decode_only = false;
      report.merge(audit_certificate(spec, selection));
    }
  }
  return report;
}

namespace {

void cdag_built_hook(const void* object) {
  const auto* built = static_cast<const cdag::Cdag*>(object);
  const AuditReport report = audit_cdag(*built);
  if (!report.ok()) {
    std::fputs(report.to_text().c_str(), stderr);
  }
  PR_ASSERT_MSG(report.ok(),
                "PATHROUTING_DEBUG_CHECKS: CDAG structural audit failed");
}

}  // namespace

void install_debug_hooks() {
  support::set_debug_hook(support::DebugHookPoint::kCdagBuilt,
                          &cdag_built_hook);
}

#ifdef PATHROUTING_DEBUG_CHECKS
namespace {
[[maybe_unused]] const bool kHooksInstalled = [] {
  install_debug_hooks();
  return true;
}();
}  // namespace
#endif

}  // namespace pathrouting::audit
