// Shared machinery for the audit rule suites (not part of the public
// API): capped finding buffers that merge deterministically in chunk
// order, and the selection-aware flush that stamps rules as run.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pathrouting/audit/diagnostic.hpp"
#include "pathrouting/audit/registry.hpp"

namespace pathrouting::audit::internal {

/// Findings are capped per rule: on a badly corrupted 10^7-vertex graph
/// every vertex can violate a rule, and a triager needs the first few
/// offenders plus the total, not ten million lines.
inline constexpr std::uint64_t kMaxFindingsPerRule = 16;

/// Per-chunk finding accumulator. Chunks collect at most the cap (plus
/// the exact violation count); merging keeps the earliest findings in
/// chunk order, so the surviving diagnostics are the ones with the
/// smallest scan positions regardless of thread count.
struct Findings {
  std::vector<Diagnostic> diags;
  std::uint64_t total = 0;

  void add(Diagnostic diag) {
    ++total;
    if (diags.size() < kMaxFindingsPerRule) diags.push_back(std::move(diag));
  }
  void merge(Findings& other) {
    total += other.total;
    for (Diagnostic& diag : other.diags) {
      if (diags.size() >= kMaxFindingsPerRule) break;
      diags.push_back(std::move(diag));
    }
  }
};

/// Emits a rule's findings into the report (if the rule is selected):
/// marks the rule as run, appends the capped diagnostics, and records a
/// note when the cap truncated the full violation count.
inline void flush(AuditReport& report, const RuleSelection& selection,
                  std::string_view rule, Findings findings) {
  if (!selection.enabled(rule)) return;
  report.mark_rule_run(std::string(rule));
  const std::uint64_t kept = findings.diags.size();
  for (Diagnostic& diag : findings.diags) report.add(std::move(diag));
  if (findings.total > kept) {
    Diagnostic note;
    note.rule = std::string(rule);
    note.severity = Severity::kNote;
    note.message = "further findings suppressed (showing first " +
                   std::to_string(kept) + " of " +
                   std::to_string(findings.total) + ")";
    report.add(note);
  }
}

/// Shorthand for a one-line error diagnostic.
inline Diagnostic error(std::string_view rule, std::string message,
                        std::uint64_t vertex = kNoId,
                        std::uint64_t edge = kNoId) {
  Diagnostic diag;
  diag.rule = std::string(rule);
  diag.message = std::move(message);
  diag.vertex = vertex;
  diag.edge = edge;
  return diag;
}

/// Error diagnostic carrying an expected-vs-actual count pair.
inline Diagnostic error_counts(std::string_view rule, std::string message,
                               std::uint64_t expected, std::uint64_t actual,
                               std::uint64_t vertex = kNoId,
                               std::uint64_t edge = kNoId) {
  Diagnostic diag = error(rule, std::move(message), vertex, edge);
  diag.expected = expected;
  diag.actual = actual;
  diag.has_counts = true;
  return diag;
}

}  // namespace pathrouting::audit::internal
