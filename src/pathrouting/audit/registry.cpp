#include "pathrouting/audit/registry.hpp"

#include <algorithm>

#include "pathrouting/support/check.hpp"

namespace pathrouting::audit {

namespace {

// Order matters: suites evaluate rules in registry order, and reports
// are folded in that order, so this table is part of the deterministic
// output contract.
constexpr RuleInfo kRules[] = {
    // Structural rules over the recursive CDAG G_r.
    {"cdag.topological-ids",
     "every in-edge predecessor has a smaller vertex id (the builder "
     "emits ranks in topological order)",
     "Section 3 (layout)"},
    {"cdag.rank-structure",
     "every edge connects consecutive global levels (ranked layering of "
     "encoding, multiplication, decoding)",
     "Section 3"},
    {"cdag.degree-bounds",
     "per-rank in-degree bounds: inputs 0, encoding ranks 1..a, products "
     "exactly 2, decoding ranks 1..b",
     "Section 3"},
    {"cdag.copy-structure",
     "copy vertices have in-degree 1 from their recorded parent, with a "
     "smaller id and a unit coefficient",
     "Section 3, Figure 2"},
    {"cdag.meta-root",
     "meta-root bookkeeping: non-copies root themselves (or defer to an "
     "earlier same-value class under grouping), copies inherit the "
     "parent's root, and recorded sizes match membership",
     "Section 3, Lemma 2"},
    {"cdag.meta-subtree",
     "without duplicate-row grouping every meta-vertex is an upward "
     "subtree: each member's copy-parent chain reaches the root",
     "Lemma 2"},
    {"cdag.fact1-prefix",
     "every edge preserves the recursion-path prefix, so the middle "
     "2(k+1) ranks decompose into b^(r-k) vertex-disjoint G_k copies",
     "Fact 1"},
    {"cdag.view-consistency",
     "an implicit CdagView synthesizes degrees, neighbor lists, copy "
     "parents, meta tables, and the edge count bit-identical to the "
     "explicit CSR reference",
     "Section 3, Fact 1 (implicit representation)"},

    // Rules over routed path families.
    {"routing.path-edges",
     "consecutive vertices of every routed path are edges of the CDAG "
     "(decoding zig-zags may traverse edges against orientation)",
     "Lemma 3, Claim 1"},
    {"routing.path-endpoints",
     "every routed path starts and ends at its declared terminals",
     "Lemma 3, Lemma 4"},
    {"routing.path-length",
     "chains consist of exactly 2k+2 vertices",
     "Lemma 3"},
    {"routing.congestion",
     "no vertex is hit more often than the declared congestion bound "
     "(2*n0^k chains, 6*a^k concatenation, |D_1|*max(a,b)^k decode)",
     "Lemma 3, Theorem 2, Claim 1"},
    {"routing.path-disjoint",
     "a family declared vertex-disjoint shares no vertex between paths",
     "Fact 1, Lemma 1"},
    {"routing.chain-count",
     "the chain routing covers all 2*a^k*n0^k guaranteed dependencies",
     "Section 7, Lemma 3"},
    {"routing.memo-totals",
     "memoized hit arrays reconcile with the closed-form certificates: "
     "2*a^k*n0^k chains of 2k+2 vertices each, D_1 visit totals for the "
     "decode zig-zags, and recorded max/argmax matching the array",
     "Lemmas 3-4, Claim 1 (certificate totals)"},
    {"routing.implicit-match",
     "the constant-memory implicit engine reproduces the array-backed "
     "memoized certificates field for field: chain, Lemma-4 "
     "multiplicity, Theorem-2, and decode stats including max/argmax",
     "Lemmas 3-4, Theorem 2, Claim 1"},

    // Fact-1 copy renamings (the memoized engine's translation maps).
    {"fact1.copy-blocks",
     "a copy renaming tiles the canonical G_k: one contiguous block per "
     "rank, 3(k+1) in total, jointly covering every local id exactly once",
     "Fact 1"},
    {"fact1.copy-bijection",
     "copy blocks embed injectively into G_r: global runs stay in range, "
     "strictly increase, and match the subcomputation address formulas",
     "Fact 1"},

    // Hall matching witnesses (Theorem 3).
    {"hall.domain",
     "the base matching is defined exactly on the guaranteed digit pairs",
     "Section 7.2, Theorem 3"},
    {"hall.edge-validity",
     "every matched product is adjacent in H: U[q,d_in] != 0 and "
     "W[d_out,q] != 0",
     "Section 7.2, Theorem 3"},
    {"hall.capacity",
     "every product is matched at most n0 times",
     "Theorem 3, Lemma 5"},

    // Input-disjoint subcomputation families (Lemma 1).
    {"family.input-disjoint",
     "family members pairwise share no input meta-vertex",
     "Lemma 1"},
    {"family.size",
     "the family keeps at least b^(r-k-2) subcomputations",
     "Lemma 1"},

    // Segment certificates (Sections 5 and 6).
    {"cert.segment-order",
     "segment end steps are strictly increasing and stay within the "
     "schedule",
     "Sections 5-6 (segment walk)"},
    {"cert.segment-quota",
     "every complete segment holds exactly s_bar_target counted "
     "vertices; only the final segment may fall short",
     "Sections 5-6"},
    {"cert.counted-total",
     "the counted-vertex total reconciles with the closed form: "
     "3*a^k*|C| (Section 6) or a^k*b^(r-k) (Section 5), and the "
     "segments account for at least that many",
     "Lemma 1, Sections 5-6"},
    {"cert.arithmetic",
     "certifier parameters reconcile with formulas.cpp: a^k >= "
     "2*s_bar_target, k within range, family_guaranteed = b^(r-k-2) "
     "and family_size >= family_guaranteed",
     "Lemma 1, Theorem 1"},
    {"cert.boundary-eq",
     "every complete segment satisfies the boundary inequality: "
     "|delta'(S')| >= |S_bar|/12 (Eq. 2) or |delta(S)| >= |S_bar|/22 "
     "(Eq. 1)",
     "Equations (1) and (2)"},

    // Schedule validity (pebble-game preconditions).
    {"schedule.vertex-range",
     "every scheduled id names a vertex of the graph",
     "machine model (Section 2)"},
    {"schedule.no-inputs",
     "input vertices are never scheduled (they start in slow memory)",
     "machine model (Section 2)"},
    {"schedule.no-duplicates",
     "no vertex is scheduled twice (no recomputation in the model)",
     "machine model (Section 2)"},
    {"schedule.topological",
     "operands are computed before use",
     "machine model (Section 2)"},
    {"schedule.coverage",
     "the schedule computes every non-input vertex",
     "machine model (Section 2)"},

    // Serving layer (certificate store integrity).
    {"service.cert-digest-match",
     "a served certificate's payload words re-digest (FNV-1a) to the "
     "digest recorded in its header and to the digest the store indexed "
     "under its content address",
     "Lemmas 3-4, Theorem 2, Claim 1 (served certificate integrity)"},

    // Static analysis (pr_static determinism-hazard linter): source
    // constructs that can break the bit-identity contract the dynamic
    // checks (TSan, golden corpus, bench gate) rely on.
    {"static.unordered-iteration",
     "no iteration over unordered_map/unordered_set feeds results — "
     "visit order is implementation-defined",
     "determinism contract (bit-identical counts at any PR_THREADS)"},
    {"static.float-accumulation",
     "no floating-point compound accumulation in counted paths — FP "
     "reduction order changes the result",
     "wrap-exact u64 arithmetic of Lemmas 3-4, Theorem 2, Claim 1"},
    {"static.nondeterminism-source",
     "no ambient entropy (rand/time(nullptr)/random_device/system_clock) "
     "in result paths",
     "determinism contract (reproducible certificates)"},
    {"static.pointer-keyed-order",
     "no std::map/std::set keyed by raw pointers — address order varies "
     "per run",
     "determinism contract (byte-stable certificates)"},
    {"static.raw-thread",
     "no raw std::thread/std::async/pthread_create outside "
     "support/parallel — all work goes through the deterministic pool",
     "determinism contract (fixed chunks, ordered reductions)"},

    // Static analysis (pr_static overflow-envelope analyzer).
    {"analysis.k-envelope",
     "the statically derived first-wrap rank and low-word envelope of "
     "each certificate quantity match the engines' closed forms and the "
     "implicit verifier",
     "Lemma 3, Theorem 2, Claim 1 (prefix-product and decode formulas)"},

    // Simulated distributed machine (parallel::Machine superstep log).
    {"machine.superstep-conservation",
     "every superstep's words sent equal its words received, the charged "
     "max per-processor traffic lies in (0, words-in-flight], lifetime "
     "bandwidth/total-words counters are exactly the log sums, and the "
     "class-aggregate path agrees with the scalar oracle bit for bit",
     "machine model bandwidth accounting ([16], Section 1)"},

    // Schedule-space search (search::branch_and_bound certificates).
    {"search.certified-optimal",
     "a certified-optimal pebbling's witness is a clean complete "
     "topological schedule whose Belady re-simulation reproduces the "
     "claimed I/O exactly, the root lower bound re-derives (empty-prefix "
     "partial-state bound max-combined with the Theorem-1 closed form) "
     "to the claimed value, the cost dominates the bound, and a "
     "bound-met optimality claim means cost == bound",
     "Hong-Kung partition argument; Theorem 1 / Section 6 segment "
     "inequality"},
};

bool matches(std::string_view id_or_prefix, std::string_view rule_id) {
  if (id_or_prefix == rule_id) return true;
  // "cdag." selects the whole domain.
  return !id_or_prefix.empty() && id_or_prefix.back() == '.' &&
         rule_id.starts_with(id_or_prefix);
}

}  // namespace

std::span<const RuleInfo> all_rules() { return kRules; }

const RuleInfo* find_rule(std::string_view id) {
  const auto it = std::find_if(std::begin(kRules), std::end(kRules),
                               [&](const RuleInfo& r) { return r.id == id; });
  return it == std::end(kRules) ? nullptr : &*it;
}

RuleSelection RuleSelection::only(const std::vector<std::string>& ids) {
  RuleSelection selection;
  selection.include_mode_ = true;
  for (const std::string& id : ids) {
    const bool is_prefix = !id.empty() && id.back() == '.';
    PR_REQUIRE_MSG(is_prefix || find_rule(id) != nullptr,
                   "RuleSelection::only: unknown rule id");
    selection.ids_.push_back(id);
  }
  return selection;
}

void RuleSelection::disable(std::string_view id_or_prefix) {
  if (include_mode_) {
    std::erase_if(ids_, [&](const std::string& id) {
      return matches(id_or_prefix, id);
    });
  } else {
    ids_.emplace_back(id_or_prefix);
  }
}

bool RuleSelection::enabled(std::string_view rule_id) const {
  const bool listed =
      std::any_of(ids_.begin(), ids_.end(), [&](const std::string& id) {
        return matches(id, rule_id);
      });
  return include_mode_ ? listed : !listed;
}

}  // namespace pathrouting::audit
